"""Tests for the trace-driven workload subsystem (``repro.traces``).

Four families:

* **Round-trip acceptance** — every built-in workload, exported with the
  trace converter and replayed through the DAG scheduler, reproduces the
  hand-coded iteration time at ``rel=1e-9`` on the paper's torus — including
  a full JSON-text round trip, so file serialisation is covered too.
* **Properties (hypothesis)** — the scheduler's output is invariant under
  topological reordering of the trace's node and edge lists; malformed
  traces (cycles, unknown op kinds, negative bytes, dangling edges) raise
  :class:`~repro.errors.TraceError` naming the trace and node.
* **Spec plumbing** — SimJob validation for the new ``trace``/``cost_table``
  fields, and byte-identical 1.4.0 canonical JSON + spec hashes for legacy
  (non-trace) jobs, pinned as literals.
* **Integration** — the ``trace`` scenario suite kind end to end with
  invariant ``where`` filters on trace rows, the shipped trace files, and
  the ``repro trace`` CLI verbs via subprocess.
"""

import copy
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import build_workload, make_system, simulate_training
from repro.errors import ConfigurationError, TraceError
from repro.runner import (
    SimJob,
    SweepRunner,
    area_power_job,
    network_drive_job,
    trace_job,
    training_job,
)
from repro.scenarios import find_scenario, run_scenario
from repro.traces import (
    DEFAULT_COST_TABLE,
    DeviceCostTable,
    Trace,
    convert_workload,
    cost_table_names,
    discover_traces,
    find_cost_table,
    find_trace,
    lower_trace,
    register_cost_table,
    topological_order,
    workload_to_trace,
)
from repro.workloads import available_workloads

REPO_ROOT = Path(__file__).resolve().parents[1]
SHIPPED_TRACES = REPO_ROOT / "traces"

DEFAULT_SETTINGS = settings(max_examples=30, deadline=None)


# ----------------------------------------------------------------------
# Round-trip acceptance: converter -> JSON -> scheduler == hand-coded
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(available_workloads()))
    def test_convert_and_replay_matches_hand_coded(self, name):
        golden_workload = build_workload(name)
        golden = simulate_training(
            make_system("ace"),
            golden_workload,
            num_npus=16,
            iterations=1,
            chunk_bytes=1 << 20,
        )
        # Full text round trip: Trace -> JSON -> Trace -> Workload.
        text = json.dumps(workload_to_trace(golden_workload).to_dict())
        replayed = lower_trace(Trace.from_dict(json.loads(text)))
        result = simulate_training(
            make_system("ace"),
            replayed,
            num_npus=16,
            iterations=1,
            chunk_bytes=1 << 20,
        )
        assert result.iteration_time_us == pytest.approx(
            golden.iteration_time_us, rel=1e-9
        )
        assert result.total_compute_us == pytest.approx(
            golden.total_compute_us, rel=1e-9
        )

    def test_convert_workload_rejects_unknown_names(self):
        with pytest.raises(TraceError, match="resnet50"):
            convert_workload("nope")

    def test_converted_trace_preserves_workload_shape(self):
        workload = build_workload("dlrm")
        replayed = lower_trace(workload_to_trace(workload))
        assert len(replayed.layers) == len(workload.layers)
        assert replayed.batch_size_per_npu == workload.batch_size_per_npu
        assert (replayed.embedding is None) == (workload.embedding is None)


# ----------------------------------------------------------------------
# Properties: reordering invariance + typed malformed-trace errors
# ----------------------------------------------------------------------
def _trace_dict(num_layers=3):
    nodes, edges = [], []
    prev = None
    for i in range(num_layers):
        tag = f"l{i}"
        nodes.append(
            {
                "id": f"{tag}.fwd",
                "kind": "compute",
                "phase": "forward",
                "layer": tag,
                "op": {
                    "kind": "tensor",
                    "name": f"{tag}.fwd",
                    "flops": 1e9 * (i + 1),
                    "bytes_read": 1e6,
                    "bytes_written": 1e6,
                },
            }
        )
        if prev is not None:
            edges.append([prev, f"{tag}.fwd"])
        prev = f"{tag}.fwd"
    for i in reversed(range(num_layers)):
        tag = f"l{i}"
        nodes.append(
            {
                "id": f"{tag}.wgrad",
                "kind": "compute",
                "phase": "weight_grad",
                "layer": tag,
                "op": {
                    "kind": "gemm",
                    "name": f"{tag}.wgrad",
                    "m": 256,
                    "n": 256,
                    "k": 64 * (i + 1),
                },
            }
        )
        nodes.append(
            {
                "id": f"{tag}.ar",
                "kind": "comm",
                "role": "weight_grad",
                "layer": tag,
                "collective": "all_reduce",
                "bytes": 1 << (20 + i),
            }
        )
        edges.append([prev, f"{tag}.wgrad"])
        edges.append([f"{tag}.wgrad", f"{tag}.ar"])
        prev = f"{tag}.wgrad"
    return {
        "schema": 1,
        "name": "prop",
        "description": "property-test trace",
        "batch_size_per_npu": 4,
        "nodes": nodes,
        "edges": edges,
    }


class TestProperties:
    @DEFAULT_SETTINGS
    @given(data=st.data())
    def test_lowering_invariant_under_node_reordering(self, data):
        base = _trace_dict()
        reference = lower_trace(Trace.from_dict(base))
        shuffled = dict(base)
        shuffled["nodes"] = data.draw(st.permutations(base["nodes"]))
        shuffled["edges"] = data.draw(st.permutations(base["edges"]))
        assert lower_trace(Trace.from_dict(shuffled)) == reference

    @DEFAULT_SETTINGS
    @given(data=st.data())
    def test_topological_order_depends_only_on_edges(self, data):
        base = _trace_dict()
        reference = [node.id for node in topological_order(Trace.from_dict(base))]
        shuffled = dict(base)
        shuffled["nodes"] = data.draw(st.permutations(base["nodes"]))
        assert [n.id for n in topological_order(Trace.from_dict(shuffled))] == reference

    def test_cycle_raises_naming_trace_and_node(self):
        bad = _trace_dict()
        bad["edges"] = bad["edges"] + [["l2.ar", "l0.fwd"]]
        with pytest.raises(TraceError, match="'prop'.*dependency cycle through node"):
            Trace.from_dict(bad)

    def test_unknown_op_kind_raises_naming_node(self):
        bad = copy.deepcopy(_trace_dict())
        bad["nodes"][0]["op"]["kind"] = "weird"
        with pytest.raises(TraceError, match="'prop'.*'l0.fwd'.*unknown op kind 'weird'"):
            Trace.from_dict(bad)

    def test_negative_bytes_raises_naming_node(self):
        bad = copy.deepcopy(_trace_dict())
        for node in bad["nodes"]:
            if node["kind"] == "comm":
                node["bytes"] = -4096
                broken = node["id"]
                break
        with pytest.raises(
            TraceError, match=f"'prop'.*{broken!r}.*'bytes' must be positive"
        ):
            Trace.from_dict(bad)

    def test_dangling_edge_raises(self):
        bad = _trace_dict()
        bad["edges"] = bad["edges"] + [["l0.fwd", "ghost"]]
        with pytest.raises(TraceError, match="'prop'.*unknown node 'ghost'.*dangling"):
            Trace.from_dict(bad)

    def test_unknown_field_raises(self):
        bad = _trace_dict()
        bad["bogus"] = True
        with pytest.raises(TraceError, match=r"unknown field\(s\) \['bogus'\]"):
            Trace.from_dict(bad)

    def test_duplicate_node_id_raises(self):
        bad = _trace_dict()
        bad["nodes"] = bad["nodes"] + [bad["nodes"][0]]
        with pytest.raises(TraceError, match="duplicate node id"):
            Trace.from_dict(bad)


# ----------------------------------------------------------------------
# Device cost tables
# ----------------------------------------------------------------------
class TestCostTables:
    def test_default_table_is_registered(self):
        assert DEFAULT_COST_TABLE in cost_table_names()
        assert find_cost_table(None).name == DEFAULT_COST_TABLE

    def test_unknown_table_lists_available(self):
        with pytest.raises(TraceError, match="paper-npu"):
            find_cost_table("tpu-v9")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(TraceError, match="already registered"):
            register_cost_table(DeviceCostTable(name="a100", tflops=1.0, memory_bandwidth_gbps=1.0))

    def test_measured_descriptor_inverts_the_roofline_exactly(self):
        # A measured duration replayed on the table's own device reproduces
        # the measurement: resolve() synthesises the FLOP count whose
        # roofline time is exactly the recorded duration.
        table = find_cost_table("paper-npu")
        cost = table.resolve(
            {"kind": "measured", "name": "k", "duration_ns": 5_000.0}, "ctx"
        )
        assert table.roofline().kernel_time_ns(cost) == pytest.approx(5_000.0)

    def test_measured_durations_floor_at_launch_overhead(self):
        table = find_cost_table("paper-npu")
        cost = table.resolve(
            {"kind": "measured", "name": "k", "duration_ns": 500.0}, "ctx"
        )
        assert cost.flops == 0.0

    def test_measured_scales_with_device_throughput(self):
        slow = find_cost_table("paper-npu")
        cost = slow.resolve(
            {"kind": "measured", "name": "k", "duration_ns": 10_000.0}, "ctx"
        )
        # The same kernel on an H100-calibrated system runs faster.
        fast = find_cost_table("h100").roofline().kernel_time_ns(cost)
        assert fast < 10_000.0


# ----------------------------------------------------------------------
# SimJob plumbing and legacy hash stability
# ----------------------------------------------------------------------
#: (job, canonical 1.4.0 spec hash) — captured on the 1.4.0 tree.  These are
#: literals on purpose: the *default* (non-trace) spec surface must stay
#: byte-identical so persistent caches survive the 1.5.0 upgrade.
LEGACY_PINS = (
    (
        training_job(
            system="ace", workload="resnet50", num_npus=16, iterations=1,
            chunk_bytes=1048576,
        ),
        "52ee7d0124afd585150d739025fd19935d94865da6e8b9a93e2be21eeed736f7",
    ),
    (
        training_job(
            system="ideal", workload="gnmt", num_npus=32, backend="detailed",
            algorithm="ring",
        ),
        "f7c23908de0746265733690ef815a6d15fbf70fbf408441c40b643f1e9be11c6",
    ),
    (
        training_job(system="ace", workload="resnet50", num_npus=16, parallelism="zero"),
        "b19c2d15c95d062575f16a070b8ba27ccc0ca10fb1e56b16aa6ec3837e5d3502",
    ),
    (
        network_drive_job(
            system="baseline_comm_opt", payload_bytes=4194304, topology=(2, 2, 2),
            chunk_bytes=262144,
        ),
        "e8297d19769137aa23939d92de357864d6883e36da245ac83af35d8c895d698f",
    ),
    (
        area_power_job(),
        "33d65562cf2f0eff6486bf5a5eaafbf640fe10eb009f79a351316cce98b54637",
    ),
)


class TestSimJobPlumbing:
    def test_legacy_spec_hashes_are_byte_identical_to_1_4_0(self):
        for job, expected in LEGACY_PINS:
            assert job.spec_hash(version="1.4.0") == expected

    def test_legacy_canonical_json_omits_trace_fields(self):
        job, _ = LEGACY_PINS[0]
        assert job.to_json() == (
            '{"algorithm":"auto","chunk_bytes":1048576,"fabric":null,'
            '"iterations":1,"kind":"training","num_npus":16,"op":"all_reduce",'
            '"overlap_embedding":false,"overrides":{},"payload_bytes":null,'
            '"system":"ace","topology":null,"workload":"resnet50"}'
        )

    def test_trace_job_spec_round_trips(self):
        job = trace_job(
            system="ace", trace="moe-transformer", num_npus=16,
            cost_table="a100", chunk_bytes=1 << 20,
        )
        data = job.to_dict()
        assert data["trace"] == "moe-transformer"
        assert data["cost_table"] == "a100"
        assert data["workload"] is None
        assert SimJob.from_dict(data) == job

    def test_training_needs_exactly_one_of_workload_or_trace(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            SimJob(
                system="ace", workload="resnet50", trace="moe-transformer", num_npus=16
            )
        with pytest.raises(ConfigurationError, match="exactly one"):
            SimJob(system="ace", workload=None, num_npus=16)

    def test_cost_table_requires_a_trace(self):
        with pytest.raises(ConfigurationError, match="cost_table"):
            SimJob(system="ace", workload="resnet50", cost_table="a100", num_npus=16)

    def test_unknown_cost_table_rejected_at_spec_time(self):
        with pytest.raises(ConfigurationError, match="tpu-v9"):
            trace_job(system="ace", trace="x", num_npus=16, cost_table="tpu-v9")

    def test_trace_rejected_on_non_training_kinds(self):
        with pytest.raises(ConfigurationError, match="training"):
            SimJob(
                system="ace", kind="network_drive", workload=None, num_npus=16,
                payload_bytes=1 << 20, trace="moe-transformer",
            )


# ----------------------------------------------------------------------
# Shipped traces + trace suite integration
# ----------------------------------------------------------------------
class TestShippedTraces:
    def test_shipped_traces_validate_and_lower_everywhere(self):
        traces = discover_traces(SHIPPED_TRACES)
        assert [t.name for t in traces] == sorted(
            p.stem for p in SHIPPED_TRACES.glob("*.json")
        )
        assert "moe-transformer" in [t.name for t in traces]
        for trace in traces:
            for table in cost_table_names():
                workload = lower_trace(trace, table)
                assert workload.layers

    def test_moe_trace_uses_all_to_all_activations(self):
        trace = find_trace("moe-transformer", SHIPPED_TRACES)
        workload = lower_trace(trace)
        moe = [layer for layer in workload.layers if "moe" in layer.name]
        assert moe, "expected MoE layers in the shipped trace"
        for layer in moe:
            assert layer.forward_comm_op.value == "all_to_all"
            assert layer.forward_allreduce_bytes > 0

    def test_trace_job_executes_end_to_end(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACES_DIR", str(SHIPPED_TRACES))
        job = trace_job(
            system="ace", trace="moe-transformer", num_npus=16, iterations=1,
            chunk_bytes=1 << 20,
        )
        result = job.execute()
        assert result.workload_name == "moe-transformer"
        assert result.iteration_time_us > 0


def _write_tiny_trace(directory: Path) -> None:
    data = _trace_dict()
    data["name"] = "tiny"
    (directory / "tiny.json").write_text(
        json.dumps(Trace.from_dict(data).to_dict(), indent=2), encoding="utf-8"
    )


class TestTraceSuite:
    def test_trace_suite_runs_with_where_filters(self, tmp_path, monkeypatch):
        traces_dir = tmp_path / "traces"
        traces_dir.mkdir()
        _write_tiny_trace(traces_dir)
        monkeypatch.setenv("REPRO_TRACES_DIR", str(traces_dir))
        scenario_dir = tmp_path / "scenarios"
        scenario_dir.mkdir()
        (scenario_dir / "tiny-trace.json").write_text(
            json.dumps(
                {
                    "schema": 1,
                    "name": "tiny-trace",
                    "description": "trace suite smoke",
                    "suites": [
                        {
                            "kind": "trace",
                            "traces": ["tiny"],
                            "systems": ["ace", "ideal"],
                            "sizes": [8],
                            "iterations": 1,
                            "cost_table": "paper-npu",
                        }
                    ],
                    "invariants": [
                        {
                            "kind": "positive",
                            "metric": "iteration_time_us",
                            "where": {"trace": "tiny"},
                        },
                        {
                            "kind": "positive",
                            "metric": "iteration_time_us",
                            "where": {"cost_table": "paper-npu"},
                        },
                        {
                            "kind": "ordering",
                            "metric": "iteration_time_us",
                            "order": ["Ideal", "ACE"],
                            "group_by": ["trace"],
                        },
                    ],
                },
                indent=2,
            ),
            encoding="utf-8",
        )
        scenario = find_scenario("tiny-trace", scenario_dir)
        report = run_scenario(scenario, runner=SweepRunner(workers=1))
        assert all(record["ok"] for record in report["invariants"])
        rows = report["results"]
        assert len(rows) == 2
        for row in rows:
            assert row["trace"] == "tiny"
            assert row["cost_table"] == "paper-npu"
            assert row["workload"] == "tiny"

    def test_unknown_trace_fails_at_compile_time(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACES_DIR", str(tmp_path))
        scenario_dir = tmp_path / "scenarios"
        scenario_dir.mkdir()
        (scenario_dir / "bad.json").write_text(
            json.dumps(
                {
                    "schema": 1,
                    "name": "bad",
                    "description": "missing trace",
                    "suites": [
                        {"kind": "trace", "traces": ["ghost"], "systems": ["ace"], "sizes": [4]}
                    ],
                }
            ),
            encoding="utf-8",
        )
        from repro.errors import ScenarioError
        from repro.scenarios import compile_scenario

        with pytest.raises(ScenarioError, match="ghost"):
            compile_scenario(find_scenario("bad", scenario_dir))


# ----------------------------------------------------------------------
# CLI subprocess smoke
# ----------------------------------------------------------------------
def run_cli(*args, cwd=REPO_ROOT, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.setdefault("REPRO_WORKERS", "1")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=str(cwd),
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestTraceCli:
    def test_trace_list_names_shipped_traces(self):
        proc = run_cli("trace", "list", "--dir", str(SHIPPED_TRACES))
        assert proc.returncode == 0, proc.stderr
        assert "moe-transformer" in proc.stdout
        assert "paper-npu" in proc.stdout

    def test_trace_list_json_is_machine_readable(self):
        proc = run_cli("trace", "list", "--dir", str(SHIPPED_TRACES), "--json")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert {t["name"] for t in payload["traces"]} >= {"moe-transformer"}
        assert {t["name"] for t in payload["cost_tables"]} == set(cost_table_names())

    def test_trace_validate_passes_on_shipped_traces(self):
        proc = run_cli("trace", "validate", "--dir", str(SHIPPED_TRACES))
        assert proc.returncode == 0, proc.stderr
        assert "all" in proc.stdout and "valid" in proc.stdout

    def test_trace_validate_fails_on_broken_trace(self, tmp_path):
        (tmp_path / "broken.json").write_text("{not json", encoding="utf-8")
        proc = run_cli("trace", "validate", "--dir", str(tmp_path))
        assert proc.returncode == 1
        assert "FAIL" in proc.stdout

    def test_trace_convert_round_trips_through_the_cli(self, tmp_path):
        proc = run_cli("trace", "convert", "resnet50", "--out", str(tmp_path / "r.json"))
        assert proc.returncode == 0, proc.stderr
        trace = Trace.from_dict(
            json.loads((tmp_path / "r.json").read_text(encoding="utf-8"))
        )
        assert trace.name == "resnet50"
        assert lower_trace(trace).layers

    def test_trace_convert_all_writes_every_builtin(self, tmp_path):
        proc = run_cli("trace", "convert", "all", "--out", str(tmp_path))
        assert proc.returncode == 0, proc.stderr
        assert sorted(p.stem for p in tmp_path.glob("*.json")) == sorted(
            available_workloads()
        )

    def test_list_and_expand_surface_trace_suites(self):
        proc = run_cli("list", "--dir", str(REPO_ROOT / "scenarios"))
        assert proc.returncode == 0, proc.stderr
        assert "traces: moe-transformer" in proc.stdout
        proc = run_cli("expand", "moe-trace", "--dir", str(REPO_ROOT / "scenarios"))
        assert proc.returncode == 0, proc.stderr
        assert "(trace)" in proc.stdout
        assert '"trace":"moe-transformer"' in proc.stdout

    def test_run_moe_trace_scenario(self, tmp_path):
        out = tmp_path / "report.json"
        proc = run_cli(
            "run", "moe-trace", "--out", str(out),
            "--dir", str(REPO_ROOT / "scenarios"),
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text(encoding="utf-8"))
        assert all(record["ok"] for record in report["invariants"])
        assert {row["trace"] for row in report["results"]} == {"moe-transformer"}
