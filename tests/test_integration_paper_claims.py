"""End-to-end integration tests pinned to the paper's qualitative claims.

These tests exercise the whole stack (workloads -> training loop -> collective
executor -> endpoints -> fabric) and assert the *shape* of the paper's
results: orderings, ratios and trends rather than absolute numbers.
"""

import pytest

from repro.analysis.bandwidth import analytical_memory_traffic, measure_network_drive
from repro.config.presets import make_system
from repro.network.topology import Torus3D
from repro.training.loop import simulate_training
from repro.units import KB, MB
from repro.workloads.registry import build_workload

CHUNK = 512 * KB


@pytest.fixture(scope="module")
def scaling_results():
    """ACE / best-baseline / ideal results for DLRM at two platform sizes."""
    workload = build_workload("dlrm")
    out = {}
    for npus in (16, 64):
        for name in ("ace", "ideal", "baseline_comp_opt", "baseline_comm_opt"):
            out[(npus, name)] = simulate_training(
                make_system(name), workload, num_npus=npus, iterations=2, chunk_bytes=CHUNK
            )
    return out


class TestAbstractClaims:
    def test_memory_bw_reduction_about_3_5x(self):
        """ACE reduces the memory BW needed to drive the network by ~3.5x."""
        req = analytical_memory_traffic(Torus3D(4, 4, 4))
        assert 3.0 <= req.memory_bw_reduction <= 4.0

    def test_ace_improves_network_bw_utilization(self):
        """ACE drives the fabric harder than the compute-optimised baseline."""
        topology = Torus3D(4, 4, 4)
        ace = measure_network_drive(make_system("ace"), topology, 16 * MB, chunk_bytes=128 * KB)
        comp = measure_network_drive(
            make_system("baseline_comp_opt"), topology, 16 * MB, chunk_bytes=128 * KB
        )
        assert ace.achieved_bandwidth_gbps > 1.4 * comp.achieved_bandwidth_gbps

    def test_ace_speeds_up_iteration_time(self, scaling_results):
        for npus in (16, 64):
            ace = scaling_results[(npus, "ace")]
            best_baseline = min(
                scaling_results[(npus, "baseline_comp_opt")].iteration_time_ns,
                scaling_results[(npus, "baseline_comm_opt")].iteration_time_ns,
            )
            assert best_baseline / ace.iteration_time_ns >= 1.0


class TestEvaluationTrends:
    def test_comp_opt_beats_comm_opt(self, scaling_results):
        """Fig. 11a: BaselineCompOpt always outperforms BaselineCommOpt."""
        for npus in (16, 64):
            comp = scaling_results[(npus, "baseline_comp_opt")]
            comm = scaling_results[(npus, "baseline_comm_opt")]
            assert comp.iteration_time_ns <= comm.iteration_time_ns

    def test_ace_tracks_ideal_closely(self, scaling_results):
        """ACE reaches ~90% of the ideal system's performance."""
        for npus in (16, 64):
            ace = scaling_results[(npus, "ace")]
            ideal = scaling_results[(npus, "ideal")]
            assert ace.fraction_of_ideal(ideal) >= 0.85

    def test_exposed_communication_grows_with_scale(self, scaling_results):
        """Fig. 11a: exposed communication increases with the platform size."""
        small = scaling_results[(16, "baseline_comp_opt")]
        large = scaling_results[(64, "baseline_comp_opt")]
        assert large.exposed_comm_ns >= small.exposed_comm_ns

    def test_ace_advantage_grows_with_scale(self, scaling_results):
        """Fig. 11b: ACE's speedup over the baselines grows with system size."""
        speedups = {}
        for npus in (16, 64):
            ace = scaling_results[(npus, "ace")]
            comp = scaling_results[(npus, "baseline_comp_opt")]
            speedups[npus] = comp.iteration_time_ns / ace.iteration_time_ns
        assert speedups[64] >= speedups[16] * 0.98

    def test_compute_time_ordering(self, scaling_results):
        """CommOpt sacrifices compute; ACE keeps compute close to ideal."""
        for npus in (16, 64):
            ideal = scaling_results[(npus, "ideal")].total_compute_ns
            ace = scaling_results[(npus, "ace")].total_compute_ns
            comm = scaling_results[(npus, "baseline_comm_opt")].total_compute_ns
            assert ideal <= ace <= comm
            assert comm / ideal > 1.2

    def test_weak_scaling_keeps_compute_constant(self, scaling_results):
        """Weak scaling: per-NPU compute time is independent of system size."""
        small = scaling_results[(16, "ideal")].total_compute_ns
        large = scaling_results[(64, "ideal")].total_compute_ns
        assert large == pytest.approx(small, rel=0.02)


class TestNoOverlapBehaviour:
    def test_no_overlap_has_fast_compute_but_exposed_comm(self):
        workload = build_workload("resnet50", batch_size=8)
        no_overlap = simulate_training(
            make_system("baseline_no_overlap"), workload, num_npus=16, iterations=2,
            chunk_bytes=CHUNK,
        )
        comm_opt = simulate_training(
            make_system("baseline_comm_opt"), workload, num_npus=16, iterations=2,
            chunk_bytes=CHUNK,
        )
        # Time-sharing gives NoOverlap ideal-speed compute...
        assert no_overlap.total_compute_ns < comm_opt.total_compute_ns
        # ...but all of its communication sits on the critical path.
        assert no_overlap.exposed_comm_ns > comm_opt.exposed_comm_ns


class TestLifoScheduling:
    def test_lifo_not_slower_than_fifo_for_data_parallel(self):
        workload = build_workload("resnet50", batch_size=8)
        lifo_system = make_system("ace")
        fifo_system = make_system("ace").with_overrides(collective_scheduling="fifo")
        lifo = simulate_training(lifo_system, workload, num_npus=64, iterations=2, chunk_bytes=CHUNK)
        fifo = simulate_training(fifo_system, workload, num_npus=64, iterations=2, chunk_bytes=CHUNK)
        assert lifo.total_time_ns <= fifo.total_time_ns * 1.02
