"""Interval tracing and utilization windows."""

import pytest

from repro.sim.trace import Interval, IntervalTracer, UtilizationTrace


def test_interval_duration():
    assert Interval(2.0, 5.0).duration == pytest.approx(3.0)


def test_busy_time_merges_overlaps():
    tracer = IntervalTracer()
    tracer.record(0.0, 10.0)
    tracer.record(5.0, 15.0)
    tracer.record(20.0, 25.0)
    assert tracer.busy_time() == pytest.approx(20.0)


def test_busy_time_clipped_to_window():
    tracer = IntervalTracer()
    tracer.record(0.0, 10.0)
    assert tracer.busy_time(5.0, 8.0) == pytest.approx(3.0)
    assert tracer.busy_time(20.0, 30.0) == 0.0


def test_zero_length_intervals_ignored():
    tracer = IntervalTracer()
    tracer.record(5.0, 5.0)
    tracer.record(6.0, 4.0)
    assert tracer.busy_time() == 0.0
    assert tracer.intervals == []


def test_total_span():
    tracer = IntervalTracer()
    assert tracer.total_span() == 0.0
    tracer.record(10.0, 20.0)
    tracer.record(50.0, 60.0)
    assert tracer.total_span() == pytest.approx(50.0)


def test_reset():
    tracer = IntervalTracer()
    tracer.record(0.0, 1.0)
    tracer.reset()
    assert tracer.busy_time() == 0.0


def test_utilization_series_windows():
    tracer = IntervalTracer()
    tracer.record(0.0, 10.0)   # first window fully busy
    tracer.record(15.0, 20.0)  # second window half busy
    trace = UtilizationTrace(window_ns=10.0)
    series = trace.utilization_series([tracer], horizon_ns=30.0)
    assert len(series) == 3
    assert series[0][1] == pytest.approx(1.0)
    assert series[1][1] == pytest.approx(0.5)
    assert series[2][1] == pytest.approx(0.0)


def test_utilization_series_multiple_tracers_average():
    busy = IntervalTracer()
    busy.record(0.0, 10.0)
    idle = IntervalTracer()
    trace = UtilizationTrace(window_ns=10.0)
    series = trace.utilization_series([busy, idle], horizon_ns=10.0)
    assert series[0][1] == pytest.approx(0.5)


def test_average_utilization():
    tracer = IntervalTracer()
    tracer.record(0.0, 25.0)
    trace = UtilizationTrace(window_ns=10.0)
    assert trace.average_utilization([tracer], 100.0) == pytest.approx(0.25)
    assert trace.average_utilization([], 100.0) == 0.0


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        UtilizationTrace(window_ns=0.0)
