"""Unit-conversion helpers."""

import pytest

from repro import units


def test_gbps_equals_bytes_per_ns():
    assert units.bytes_per_ns(1.0) == 1.0
    assert units.bytes_per_ns(400.0) == 400.0


def test_transfer_time_simple():
    # 1000 bytes at 1 GB/s is 1000 ns.
    assert units.transfer_time_ns(1000, 1.0) == pytest.approx(1000.0)
    # 64 KB at 64 GB/s is 1024 ns.
    assert units.transfer_time_ns(64 * units.KB, 64.0) == pytest.approx(1024.0)


def test_transfer_time_rejects_non_positive_bandwidth():
    with pytest.raises(ValueError):
        units.transfer_time_ns(100, 0.0)
    with pytest.raises(ValueError):
        units.transfer_time_ns(100, -5.0)


def test_cycles_roundtrip():
    ns = units.cycles_to_ns(1245, 1245.0)
    assert ns == pytest.approx(1000.0)
    assert units.ns_to_cycles(ns, 1245.0) == pytest.approx(1245.0)


def test_cycles_rejects_bad_frequency():
    with pytest.raises(ValueError):
        units.cycles_to_ns(10, 0)
    with pytest.raises(ValueError):
        units.ns_to_cycles(10, -1)


def test_time_conversions():
    assert units.ns_to_us(1500.0) == pytest.approx(1.5)
    assert units.ns_to_ms(2_500_000.0) == pytest.approx(2.5)
    assert units.us_to_ns(2.0) == pytest.approx(2000.0)
    assert units.ms_to_ns(1.0) == pytest.approx(1_000_000.0)


def test_flops_time():
    # 120 TFLOP at 120 TFLOP/s takes one second.
    assert units.flops_time_ns(120e12, 120.0) == pytest.approx(units.SECOND)
    with pytest.raises(ValueError):
        units.flops_time_ns(1e9, 0)


@pytest.mark.parametrize(
    "value,expected",
    [(512, "512.0 B"), (2048, "2.0 KB"), (3 * units.MB, "3.0 MB"), (5 * units.GB, "5.0 GB")],
)
def test_pretty_bytes(value, expected):
    assert units.pretty_bytes(value) == expected


@pytest.mark.parametrize(
    "value,expected_suffix",
    [(500.0, "ns"), (5_000.0, "us"), (5_000_000.0, "ms"), (5e9, "s")],
)
def test_pretty_time_suffix(value, expected_suffix):
    assert units.pretty_time(value).endswith(expected_suffix)


def test_data_size_constants():
    assert units.MB == 1024 * units.KB
    assert units.GB == 1024 * units.MB
