"""System configuration and Table VI presets."""

import pytest

from repro.config.presets import (
    SYSTEM_CONFIG_NAMES,
    make_system,
    torus_shape_for_npus,
)
from repro.config.system import (
    AceConfig,
    ComputeConfig,
    EndpointKind,
    MemoryConfig,
    NetworkConfig,
    ResourcePolicy,
    SystemConfig,
)
from repro.errors import ConfigurationError
from repro.units import MB


class TestComputeConfig:
    def test_defaults_match_table5(self):
        cfg = ComputeConfig()
        assert cfg.num_sms == 80
        assert cfg.peak_tflops_fp16 == 120.0
        assert cfg.frequency_mhz == 1245.0

    def test_sm_memory_bandwidth(self):
        # 64 B/cycle at 1245 MHz is ~80 GB/s per SM (Section III).
        assert ComputeConfig().sm_memory_bandwidth_gbps == pytest.approx(79.68, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ComputeConfig(num_sms=0)
        with pytest.raises(ConfigurationError):
            ComputeConfig(peak_tflops_fp16=-1)


class TestNetworkConfig:
    def test_table5_ring_bandwidths(self):
        net = NetworkConfig()
        assert net.local_ring_bandwidth_gbps == pytest.approx(376.0)
        assert net.vertical_ring_bandwidth_gbps == pytest.approx(47.0)
        assert net.horizontal_ring_bandwidth_gbps == pytest.approx(47.0)
        assert net.total_injection_bandwidth_gbps == pytest.approx(470.0)

    def test_latencies(self):
        net = NetworkConfig()
        assert net.intra_package_latency_ns == pytest.approx(72.3, rel=1e-2)
        assert net.inter_package_latency_ns == pytest.approx(401.6, rel=1e-2)
        assert net.dimension_latency_ns("local") < net.dimension_latency_ns("vertical")

    def test_dimension_lookup_rejects_unknown(self):
        net = NetworkConfig()
        with pytest.raises(ConfigurationError):
            net.dimension_bandwidth_gbps("diagonal")
        with pytest.raises(ConfigurationError):
            net.dimension_latency_ns("diagonal")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(link_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            NetworkConfig(packet_size_bytes=0)


class TestAceConfig:
    def test_defaults_match_section4(self):
        ace = AceConfig()
        assert ace.sram_bytes == 4 * MB
        assert ace.num_fsms == 16
        assert ace.num_alus == 4
        assert ace.chunk_bytes == 64 * 1024
        assert ace.message_bytes == 8 * 1024
        assert ace.packet_bytes == 256

    def test_alu_throughput(self):
        # 4 ALUs x 64 B/cycle x 1245 MHz ~= 319 GB/s.
        assert AceConfig().alu_throughput_gbps == pytest.approx(318.7, rel=1e-2)

    def test_max_inflight_chunks(self):
        assert AceConfig().max_inflight_chunks == 64

    def test_granularity_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            AceConfig(message_bytes=128 * 1024)
        with pytest.raises(ConfigurationError):
            AceConfig(packet_bytes=16 * 1024)


class TestSystemConfig:
    @pytest.mark.parametrize("name", SYSTEM_CONFIG_NAMES)
    def test_all_presets_build(self, name):
        system = make_system(name)
        assert isinstance(system, SystemConfig)
        assert system.describe()["name"] == system.name

    def test_paper_labels_accepted(self):
        assert make_system("BaselineCommOpt").endpoint is EndpointKind.BASELINE_COMM_OPT
        assert make_system("ACE").endpoint is EndpointKind.ACE
        assert make_system("Ideal").endpoint is EndpointKind.IDEAL

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_system("turbo")

    def test_comm_opt_resource_split(self):
        system = make_system("baseline_comm_opt")
        assert system.policy.comm_sms == 6
        assert system.policy.comm_memory_bandwidth_gbps == 450.0
        assert system.compute_sms == 74
        assert system.compute_memory_bandwidth_gbps == pytest.approx(450.0)

    def test_comp_opt_resource_split(self):
        system = make_system("baseline_comp_opt")
        assert system.policy.comm_sms == 2
        assert system.comm_memory_bandwidth_gbps == pytest.approx(128.0)
        assert system.compute_memory_bandwidth_gbps == pytest.approx(772.0)

    def test_ace_keeps_all_sms_for_compute(self):
        system = make_system("ace")
        assert system.compute_sms == 80
        assert system.comm_memory_bandwidth_gbps == pytest.approx(128.0)
        assert system.compute_memory_bandwidth_gbps == pytest.approx(772.0)

    def test_ideal_charges_nothing(self):
        system = make_system("ideal")
        assert system.compute_sms == 80
        assert system.compute_memory_bandwidth_gbps == pytest.approx(900.0)
        assert system.collective_launch_overhead_ns == 0.0

    def test_no_overlap_time_shares_resources(self):
        system = make_system("baseline_no_overlap")
        assert system.compute_sms == 80
        assert system.compute_memory_bandwidth_gbps == pytest.approx(900.0)
        assert not system.endpoint.overlaps_communication

    def test_baselines_have_launch_overhead(self):
        assert make_system("baseline_comm_opt").collective_launch_overhead_ns > 0
        assert make_system("ace").collective_launch_overhead_ns > 0
        assert (
            make_system("ace").collective_launch_overhead_ns
            < make_system("baseline_comm_opt").collective_launch_overhead_ns
        )

    def test_oversubscribed_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(
                name="bad",
                endpoint=EndpointKind.BASELINE_COMM_OPT,
                policy=ResourcePolicy(comm_sms=100, comm_memory_bandwidth_gbps=10),
            )
        with pytest.raises(ConfigurationError):
            SystemConfig(
                name="bad",
                endpoint=EndpointKind.BASELINE_COMM_OPT,
                policy=ResourcePolicy(comm_sms=1, comm_memory_bandwidth_gbps=10_000),
            )

    def test_with_overrides(self):
        system = make_system("ace")
        modified = system.with_overrides(collective_scheduling="fifo")
        assert modified.collective_scheduling == "fifo"
        assert system.collective_scheduling == "lifo"

    def test_invalid_scheduling_rejected(self):
        with pytest.raises(ConfigurationError):
            make_system("ace").with_overrides(collective_scheduling="random")


class TestTorusShapes:
    @pytest.mark.parametrize(
        "npus,shape",
        [(16, (4, 2, 2)), (32, (4, 4, 2)), (64, (4, 4, 4)), (128, (4, 8, 4))],
    )
    def test_paper_shapes(self, npus, shape):
        assert torus_shape_for_npus(npus) == shape
        assert shape[0] * shape[1] * shape[2] == npus

    def test_unknown_size_rejected(self):
        with pytest.raises(ConfigurationError):
            torus_shape_for_npus(7)


class TestMemoryConfig:
    def test_defaults(self):
        mem = MemoryConfig()
        assert mem.npu_memory_bandwidth_gbps == 900.0
        assert mem.npu_afi_bus_bandwidth_gbps == 500.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(npu_memory_bandwidth_gbps=0)
        with pytest.raises(ConfigurationError):
            MemoryConfig(transaction_overhead_ns=-1)


class TestCollectiveAlgorithmKnob:
    def test_default_is_auto(self):
        assert make_system("ace").collective_algorithm == "auto"

    def test_make_system_pins_algorithm(self):
        system = make_system("ace", algorithm="ring")
        assert system.collective_algorithm == "ring"

    def test_with_overrides_round_trip(self):
        system = make_system("ideal").with_overrides(collective_algorithm="tree")
        assert system.collective_algorithm == "tree"
        assert system.describe()["algorithm"] == "tree"

    def test_empty_algorithm_rejected(self):
        with pytest.raises(ConfigurationError, match="collective_algorithm"):
            make_system("ace").with_overrides(collective_algorithm="")

    def test_switch_and_direct_dimension_classes(self):
        network = NetworkConfig()
        assert network.dimension_bandwidth_gbps("switch") == network.local_ring_bandwidth_gbps
        assert network.dimension_bandwidth_gbps("direct") == network.vertical_ring_bandwidth_gbps
        assert network.dimension_latency_ns("switch") == network.intra_package_latency_ns
        assert network.dimension_latency_ns("direct") == network.inter_package_latency_ns
        with pytest.raises(ConfigurationError):
            network.dimension_bandwidth_gbps("warp")
