"""Tests for the pluggable compute-backend layer (spec 1.6.0).

Covers the registry and its typed errors, the execution-unit model's edge
cases (zero-flop kernels, the roofline ridge point, the never-faster
invariant), the measured-op inversion round trip on both backends, the
``SimJob.compute`` knob and its spec-hash compatibility guarantee, the
scenario plumbing, and the ``docs/KNOBS.md`` cross-reference that keeps the
knob table in sync with the code.
"""

from __future__ import annotations

import re
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.compute import (
    AUTO_COMPUTE_BACKEND,
    DEFAULT_COMPUTE_AUTO_NPU_THRESHOLD,
    DEFAULT_COMPUTE_BACKEND,
    ComputeBackend,
    ExecutionUnitModel,
    KernelCost,
    NpuComputeEngine,
    RooflineModel,
    compute_backend_names,
    make_compute_backend,
    register_compute_backend,
    resolve_compute_backend_name,
    validate_compute_backend_name,
)
from repro.config.presets import make_system
from repro.config.system import ComputeConfig
from repro.errors import ConfigurationError, ScenarioError
from repro.runner import (
    SimJob,
    SweepRunner,
    area_power_job,
    network_drive_job,
    trace_job,
    training_job,
)
from repro.runner.cache import ResultCache
from repro.units import KB, MB, SECOND, TERA

TFLOPS = 120.0
BW_GBPS = 900.0
OVERHEAD_NS = 2_000.0


def _roofline() -> RooflineModel:
    return RooflineModel(TFLOPS, BW_GBPS, OVERHEAD_NS)


def _execution_unit(units: ComputeConfig = None) -> ExecutionUnitModel:
    return ExecutionUnitModel(TFLOPS, BW_GBPS, OVERHEAD_NS, units=units)


def _kernel(flops: float, bytes_total: float, efficiency: float = 0.85) -> KernelCost:
    return KernelCost(
        name="k",
        flops=flops,
        bytes_read=bytes_total / 2,
        bytes_written=bytes_total / 2,
        compute_efficiency=efficiency,
    )


#: A spread of kernel shapes: compute-bound, memory-bound, near-ridge, tiny.
KERNEL_GRID = (
    _kernel(5e9, 1 * MB),
    _kernel(1e7, 64 * MB),
    _kernel(1e12, 2 * MB, efficiency=1.0),
    _kernel(1e5, 1 * KB),
    _kernel(3e8, 3 * MB, efficiency=0.5),
)


class TestRegistry:
    def test_builtin_backends_are_registered(self):
        names = compute_backend_names()
        assert set(names) == {"roofline", "execution-unit"}
        assert DEFAULT_COMPUTE_BACKEND in names

    def test_unknown_name_raises_typed_error_naming_choices(self):
        with pytest.raises(ConfigurationError) as excinfo:
            validate_compute_backend_name("systolic")
        message = str(excinfo.value)
        assert "systolic" in message
        assert "roofline" in message
        assert "execution-unit" in message
        assert AUTO_COMPUTE_BACKEND in message

    def test_auto_is_reserved(self):
        with pytest.raises(ConfigurationError, match="reserved"):
            @register_compute_backend(AUTO_COMPUTE_BACKEND)
            class Bad(ComputeBackend):  # pragma: no cover - never registered
                def kernel_time_ns(self, cost):
                    return 0.0

                def invert_duration_ns(self, duration_ns):
                    return 0.0

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            @register_compute_backend("roofline")
            class Clash(ComputeBackend):  # pragma: no cover - never registered
                def kernel_time_ns(self, cost):
                    return 0.0

                def invert_duration_ns(self, duration_ns):
                    return 0.0

    def test_auto_resolution_validates_small_and_sweeps_large(self):
        threshold = DEFAULT_COMPUTE_AUTO_NPU_THRESHOLD
        assert resolve_compute_backend_name("auto", num_npus=8) == "execution-unit"
        assert resolve_compute_backend_name("auto", num_npus=threshold) == "execution-unit"
        assert resolve_compute_backend_name("auto", num_npus=threshold + 1) == "roofline"
        assert resolve_compute_backend_name("auto", num_npus=None) == "roofline"
        # Explicit names pass through regardless of size.
        assert resolve_compute_backend_name("roofline", num_npus=2) == "roofline"
        assert resolve_compute_backend_name("execution-unit", num_npus=512) == "execution-unit"

    def test_auto_threshold_override_and_validation(self):
        assert resolve_compute_backend_name("auto", num_npus=64, auto_threshold=64) == (
            "execution-unit"
        )
        with pytest.raises(ConfigurationError, match="threshold"):
            resolve_compute_backend_name("auto", num_npus=4, auto_threshold=0)

    def test_factory_builds_by_name_and_resolves_auto(self):
        roofline = make_compute_backend("roofline", TFLOPS, BW_GBPS)
        assert roofline.name == "roofline"
        auto_small = make_compute_backend("auto", TFLOPS, BW_GBPS, num_npus=8)
        assert isinstance(auto_small, ExecutionUnitModel)
        with pytest.raises(ConfigurationError, match="unknown compute backend"):
            make_compute_backend("nope", TFLOPS, BW_GBPS)


class TestRooflineBackend:
    def test_bit_identical_to_roofline_model(self):
        backend = make_compute_backend("roofline", TFLOPS, BW_GBPS, OVERHEAD_NS)
        model = _roofline()
        for cost in KERNEL_GRID:
            assert backend.kernel_time_ns(cost) == model.kernel_time_ns(cost)

    def test_inversion_round_trip(self):
        backend = make_compute_backend("roofline", TFLOPS, BW_GBPS, OVERHEAD_NS)
        for duration_ns in (2_500.0, 10_000.0, 1e6):
            flops = backend.invert_duration_ns(duration_ns)
            replay = KernelCost("replay", flops, 0.0, 0.0, compute_efficiency=1.0)
            assert backend.kernel_time_ns(replay) == pytest.approx(duration_ns, rel=1e-12)

    def test_inversion_floors_at_launch_overhead(self):
        backend = make_compute_backend("roofline", TFLOPS, BW_GBPS, OVERHEAD_NS)
        assert backend.invert_duration_ns(OVERHEAD_NS / 2) == 0.0


class TestExecutionUnitModel:
    def test_never_faster_than_roofline(self):
        """Occupancy derates and exposed fill/drain are pure additions."""
        roofline, eu = _roofline(), _execution_unit()
        for cost in KERNEL_GRID:
            assert eu.kernel_time_ns(cost) >= roofline.kernel_time_ns(cost)

    def test_zero_flop_kernel_is_pure_dma(self):
        eu = _execution_unit()
        cost = _kernel(0.0, 8 * MB)
        times = eu.unit_times_ns(cost)
        assert times["matrix"] == 0.0
        assert times["vector"] == 0.0
        assert times["scalar"] == 0.0
        dma_ns = cost.bytes_total / BW_GBPS
        assert times["dma_hidden"] + times["dma_exposed"] == pytest.approx(
            dma_ns + 2 * eu.unit_sram_bytes / BW_GBPS
        )
        assert eu.kernel_time_ns(cost) == pytest.approx(
            times["dma_hidden"] + times["dma_exposed"] + OVERHEAD_NS
        )
        assert eu.bottleneck_unit(cost) == "dma"

    def test_zero_flop_zero_byte_kernel_is_pure_overhead(self):
        eu = _execution_unit()
        cost = KernelCost("noop", 0.0, 0.0, 0.0, compute_efficiency=1.0)
        assert eu.kernel_time_ns(cost) == OVERHEAD_NS

    def test_register_file_resident_kernel_has_no_fill_drain(self):
        eu = _execution_unit()
        resident = _kernel(1e6, float(eu.register_file_bytes))
        spilled = _kernel(1e6, float(eu.register_file_bytes) + 1.0)
        assert eu.unit_times_ns(resident)["dma_exposed"] == pytest.approx(
            (1.0 - eu.dma_overlap) * resident.bytes_total / BW_GBPS
        )
        # One byte over the register file pays the SRAM fill/drain.
        assert eu.unit_times_ns(spilled)["dma_exposed"] > (
            eu.unit_times_ns(resident)["dma_exposed"]
        )

    def test_ridge_point_kernel(self):
        """At the exact roofline ridge both bounds are equal; the
        execution-unit inflation there stays within the validation budget."""
        roofline, eu = _roofline(), _execution_unit()
        bytes_total = 32 * MB
        flops = roofline.ridge_intensity() * bytes_total
        cost = _kernel(flops, bytes_total, efficiency=1.0)
        assert roofline.compute_time_ns(cost) == pytest.approx(
            roofline.memory_time_ns(cost), rel=1e-9
        )
        tr, te = roofline.kernel_time_ns(cost), eu.kernel_time_ns(cost)
        assert te >= tr
        from repro.experiments.compute_validation import TOLERANCE

        assert (te - tr) / tr <= TOLERANCE

    def test_inversion_round_trip(self):
        eu = _execution_unit()
        for duration_ns in (3_000.0, 50_000.0, 2e6):
            flops = eu.invert_duration_ns(duration_ns)
            replay = KernelCost("replay", flops, 0.0, 0.0, compute_efficiency=1.0)
            assert eu.kernel_time_ns(replay) == pytest.approx(duration_ns, rel=1e-9)

    def test_invalid_unit_parameters_name_the_field(self):
        for field, value in (
            ("matrix_unit_fraction", 0.0),
            ("vector_unit_fraction", 1.5),
            ("scalar_unit_fraction", -0.1),
            ("unit_occupancy", 0.0),
            ("dma_overlap", 1.2),
            ("scalar_flops_fraction", -1e-3),
            ("vector_flops_per_byte", 0.0),
            ("unit_sram_bytes", 0),
            ("register_file_bytes", -1),
        ):
            units = SimpleNamespace(**{**ComputeConfig().__dict__, field: value})
            with pytest.raises(ConfigurationError, match=field):
                ExecutionUnitModel(TFLOPS, BW_GBPS, units=units)

    def test_compute_config_validates_unit_fields(self):
        with pytest.raises(ConfigurationError, match="unit_occupancy"):
            ComputeConfig(unit_occupancy=1.5)
        with pytest.raises(ConfigurationError, match="dma_overlap"):
            ComputeConfig(dma_overlap=-0.1)
        # dma_overlap of 0 (nothing hidden) is a legal, pessimal setting.
        zero_overlap = ComputeConfig(dma_overlap=0.0)
        assert zero_overlap.dma_overlap == 0.0

    def test_dma_overlap_zero_exposes_the_full_stream(self):
        eu = _execution_unit(ComputeConfig(dma_overlap=0.0))
        cost = _kernel(1e6, 8 * MB)
        times = eu.unit_times_ns(cost)
        assert times["dma_hidden"] == 0.0
        assert times["dma_exposed"] >= cost.bytes_total / BW_GBPS


class TestSystemThreading:
    def test_make_system_compute_keyword(self):
        assert make_system("ace").compute_backend == DEFAULT_COMPUTE_BACKEND
        system = make_system("ace", compute="execution-unit")
        assert system.compute_backend == "execution-unit"
        assert make_system("ace", compute="auto").compute_backend == "auto"

    def test_system_config_rejects_empty_backend_name(self):
        with pytest.raises(ConfigurationError, match="compute_backend"):
            make_system("ace").with_overrides(compute_backend="")

    def test_describe_reports_the_backend(self):
        assert make_system("ace").describe()["compute_backend"] == "roofline"

    def test_engine_resolves_auto_by_platform_size(self):
        system = make_system("ace", compute="auto")
        small = NpuComputeEngine(system, num_npus=8)
        large = NpuComputeEngine(system, num_npus=128)
        assert small.backend_name == "execution-unit"
        assert isinstance(small.backend, ExecutionUnitModel)
        assert large.backend_name == "roofline"

    def test_engine_execution_unit_prices_above_roofline(self):
        roofline_engine = NpuComputeEngine(make_system("ace"))
        eu_engine = NpuComputeEngine(make_system("ace", compute="execution-unit"))
        for cost in KERNEL_GRID:
            assert eu_engine.task_time_ns(cost) >= roofline_engine.task_time_ns(cost)


#: (job, canonical 1.5.0 spec hash) — captured on the 1.5.0 tree.  Literals
#: on purpose: jobs that do not set the ``compute`` knob must canonicalise to
#: exactly their pre-1.6.0 JSON, so persistent caches survive the upgrade.
LEGACY_PINS = (
    (
        training_job(
            system="ace", workload="resnet50", num_npus=16, iterations=1,
            chunk_bytes=1048576,
        ),
        "49728d5c54377c38332eeb485f38a31a495abd15aff84e777a1cb85734c70d50",
    ),
    (
        training_job(
            system="ideal", workload="gnmt", num_npus=32, backend="detailed",
            algorithm="ring",
        ),
        "3b2097f04ce6400d63ba0e73e478b8292b207d0b87bcd0ca38b992e0e3f47b89",
    ),
    (
        training_job(system="ace", workload="resnet50", num_npus=16, parallelism="zero"),
        "c7dd9531fa6d5246b99a8240931bf0770eafb820569232e7b7eb1cb4f9b4528d",
    ),
    (
        trace_job("ace", "dlrm-micro", num_npus=8),
        "9838b1d1f5675e269c1c5d37ef8b233a7a5784e68424bbc7fcd27714a7a2107c",
    ),
    (
        network_drive_job(
            system="baseline_comm_opt", payload_bytes=4194304, topology=(2, 2, 2),
            chunk_bytes=262144,
        ),
        "dff592f84d798876acaea1e7abd851753ff12862ab43d7ebd50e012333e0f9d6",
    ),
    (
        area_power_job(),
        "2f19260ae5abcea33c908fa92c9d25a9782f7e904fd40413cad4ef9cb99a2561",
    ),
)


class TestSimJobCompute:
    def test_legacy_spec_hashes_are_byte_identical_to_1_5_0(self):
        for job, expected in LEGACY_PINS:
            assert job.spec_hash(version="1.5.0") == expected

    def test_canonical_json_omits_compute_when_unset(self):
        job, _ = LEGACY_PINS[0]
        assert '"compute"' not in job.to_json()

    def test_canonical_json_carries_compute_when_set(self):
        job = training_job("ace", "resnet50", num_npus=16, compute="execution-unit")
        assert '"compute":"execution-unit"' in job.to_json()
        assert SimJob.from_json(job.to_json()) == job

    def test_compute_knob_changes_the_spec_hash(self):
        plain = training_job("ace", "resnet50", num_npus=16)
        eu = training_job("ace", "resnet50", num_npus=16, compute="execution-unit")
        assert plain.spec_hash() != eu.spec_hash()

    def test_compute_is_training_only(self):
        with pytest.raises(ConfigurationError, match="training"):
            SimJob(
                kind="network_drive", system="ace", payload_bytes=1024,
                num_npus=16, compute="roofline",
            )

    def test_unknown_compute_name_rejected_at_submission(self):
        with pytest.raises(ConfigurationError, match="unknown compute backend"):
            training_job("ace", "resnet50", num_npus=16, compute="bogus")

    def test_conflicting_compute_override_rejected(self):
        with pytest.raises(ConfigurationError, match="conflicting compute backends"):
            training_job(
                "ace", "resnet50", num_npus=16, compute="roofline",
                overrides={"compute_backend": "execution-unit"},
            )

    def test_matching_compute_override_allowed(self):
        job = training_job(
            "ace", "resnet50", num_npus=16, compute="execution-unit",
            overrides={"compute_backend": "execution-unit"},
        )
        assert job.build_system().compute_backend == "execution-unit"

    def test_build_system_threads_the_shorthand(self):
        job = training_job("ace", "resnet50", num_npus=16, compute="execution-unit")
        assert job.build_system().compute_backend == "execution-unit"
        plain = training_job("ace", "resnet50", num_npus=16)
        assert plain.build_system().compute_backend == DEFAULT_COMPUTE_BACKEND

    def test_default_and_explicit_roofline_simulate_identically(self):
        """The golden guarantee: compute="roofline" is a no-op spelling."""
        runner = SweepRunner(workers=1, cache=ResultCache())
        default_job = training_job(
            "ace", "resnet50", num_npus=8, iterations=1, chunk_bytes=1024 * KB
        )
        pinned_job = training_job(
            "ace", "resnet50", num_npus=8, iterations=1, chunk_bytes=1024 * KB,
            compute="roofline",
        )
        default, pinned = runner.run_values([default_job, pinned_job])
        assert default.total_time_ns == pinned.total_time_ns
        assert default.exposed_comm_ns == pinned.exposed_comm_ns

    def test_execution_unit_job_is_slower_not_broken(self):
        runner = SweepRunner(workers=1, cache=ResultCache())
        roofline_job = training_job(
            "ace", "resnet50", num_npus=8, iterations=1, chunk_bytes=1024 * KB
        )
        eu_job = training_job(
            "ace", "resnet50", num_npus=8, iterations=1, chunk_bytes=1024 * KB,
            compute="execution-unit",
        )
        roofline, eu = runner.run_values([roofline_job, eu_job])
        assert eu.total_time_ns > roofline.total_time_ns
        from repro.experiments.compute_validation import TOLERANCE

        rel = (eu.total_time_ns - roofline.total_time_ns) / roofline.total_time_ns
        assert rel <= TOLERANCE


class TestTraceInversion:
    def test_measured_ops_invert_the_active_backend(self):
        from repro.traces.cost import find_cost_table

        table = find_cost_table("paper-npu")
        op = {"kind": "measured", "name": "k", "duration_ns": 50_000.0}
        for backend_name in ("roofline", "execution-unit"):
            cost = table.resolve(op, "ctx", compute_backend=backend_name)
            replay = table.backend(backend_name).kernel_time_ns(cost)
            assert replay == pytest.approx(50_000.0, rel=1e-9)

    def test_backends_invert_to_different_flop_counts(self):
        from repro.traces.cost import find_cost_table

        table = find_cost_table("paper-npu")
        op = {"kind": "measured", "name": "k", "duration_ns": 50_000.0}
        roofline = table.resolve(op, "ctx", compute_backend="roofline")
        eu = table.resolve(op, "ctx", compute_backend="execution-unit")
        # The execution-unit matrix rate is derated, so the same wall-clock
        # duration corresponds to fewer FLOPs.
        assert eu.flops < roofline.flops

    def test_lower_trace_binds_the_backend_for_measured_ops(self):
        """``lower_trace(compute_backend=...)`` inverts the *named* backend's
        model, so pricing the lowered kernels with that same backend
        reproduces the measured durations exactly."""
        from repro.traces import Trace, lower_trace
        from repro.traces.cost import find_cost_table

        durations = (30_000.0, 70_000.0)
        trace = Trace.from_dict(
            {
                "schema": 1,
                "name": "measured-pair",
                "description": "two measured forward kernels",
                "batch_size_per_npu": 1,
                "nodes": [
                    {
                        "id": f"l{i}.fwd",
                        "kind": "compute",
                        "phase": "forward",
                        "layer": f"l{i}",
                        "op": {
                            "kind": "measured",
                            "name": f"l{i}.fwd",
                            "duration_ns": duration,
                        },
                    }
                    for i, duration in enumerate(durations)
                ],
                "edges": [["l0.fwd", "l1.fwd"]],
            }
        )
        table = find_cost_table(None)
        for backend_name in ("roofline", "execution-unit"):
            workload = lower_trace(trace, compute_backend=backend_name)
            backend = table.backend(backend_name)
            for layer, duration in zip(workload.layers, durations):
                assert backend.kernel_time_ns(layer.forward) == pytest.approx(
                    duration, rel=1e-9
                )

    def test_trace_job_execution_unit_is_never_faster(self):
        """Architectural (tensor) trace descriptors price differently per
        backend; the never-faster invariant must hold end to end."""
        runner = SweepRunner(workers=1, cache=ResultCache())
        jobs = [
            trace_job("ace", "dlrm-micro", num_npus=8, iterations=1, compute=name)
            for name in ("roofline", "execution-unit")
        ]
        roofline, eu = runner.run_values(jobs)
        assert eu.total_time_ns >= roofline.total_time_ns


class TestComputeValidationHarness:
    def test_backend_pair_validation(self):
        from repro.experiments.compute_validation import compute_validation_jobs

        with pytest.raises(ConfigurationError, match="two distinct"):
            compute_validation_jobs(backends=("roofline",))
        with pytest.raises(ConfigurationError, match="two distinct"):
            compute_validation_jobs(backends=("roofline", "roofline"))
        with pytest.raises(ConfigurationError, match="unknown compute backend"):
            compute_validation_jobs(backends=("roofline", "bogus"))

    def test_jobs_are_paired_per_cell(self):
        from repro.experiments.compute_validation import compute_validation_jobs

        jobs = compute_validation_jobs(training_cells=(("resnet50", 8), ("dlrm", 8)))
        assert len(jobs) == 4
        assert [job.compute for job in jobs] == [
            "roofline", "execution-unit", "roofline", "execution-unit",
        ]

    def test_single_cell_run_meets_the_bound(self):
        from repro.experiments.compute_validation import (
            TOLERANCE,
            max_disagreement,
            min_slowdown,
            run_compute_validation,
        )

        rows = run_compute_validation(
            training_cells=(("resnet50", 8),),
            iterations=1,
            runner=SweepRunner(workers=1, cache=ResultCache()),
        )
        assert len(rows) == 1
        assert max_disagreement(rows) <= TOLERANCE
        assert min_slowdown(rows) >= 0.0


class TestScenarioPlumbing:
    def _scenario(self, suites, invariants=()):
        from repro.scenarios.schema import Scenario

        return Scenario.from_dict(
            {
                "schema": 1,
                "name": "inline",
                "description": "inline test scenario",
                "suites": suites,
                "invariants": list(invariants),
            },
            source="inline",
        )

    def test_compute_validation_suite_compiles_to_a_figure(self):
        from repro.scenarios.loader import compile_suite

        scenario = self._scenario(
            [{
                "kind": "compute_validation",
                "system": "ace",
                "training_cells": [["resnet50", 8]],
                "iterations": 1,
            }]
        )
        compiled = compile_suite(scenario, 0)
        assert compiled.is_figure
        assert compiled.figure.figure.name == "compute_validation"
        assert compiled.figure.options["training_cells"] == [("resnet50", 8)]

    def test_training_grid_compute_key_threads_to_jobs(self):
        from repro.scenarios.loader import scenario_jobs

        scenario = self._scenario(
            [{
                "kind": "training_grid", "systems": ["ace"],
                "workloads": ["resnet50"], "sizes": [8],
                "compute": "execution-unit",
            }]
        )
        jobs = scenario_jobs(scenario)
        assert [job.compute for job in jobs] == ["execution-unit"]

    def test_sweep_computes_axis_expands(self):
        from repro.scenarios.loader import scenario_jobs

        scenario = self._scenario(
            [{
                "kind": "sweep", "systems": ["ace"], "workloads": ["resnet50"],
                "sizes": [8], "computes": ["roofline", "execution-unit"],
            }]
        )
        jobs = scenario_jobs(scenario)
        assert sorted(job.compute for job in jobs) == ["execution-unit", "roofline"]

    def test_schema_rejects_non_string_compute(self):
        with pytest.raises(ScenarioError, match="compute"):
            self._scenario(
                [{
                    "kind": "training_grid", "workloads": ["resnet50"],
                    "sizes": [8], "compute": 5,
                }]
            )

    def test_schema_rejects_malformed_training_cells(self):
        with pytest.raises(ScenarioError, match="training_cells"):
            self._scenario(
                [{
                    "kind": "compute_validation",
                    "training_cells": [["resnet50", 8, "extra"]],
                }]
            )

    def test_shipped_manifest_compiles(self):
        from repro.scenarios.loader import compile_scenario, find_scenario

        scenario = find_scenario(
            "compute-validation", Path(__file__).resolve().parents[1] / "scenarios"
        )
        compiled = compile_scenario(scenario)
        assert len(compiled) == 1
        assert compiled[0].is_figure
        metrics = {invariant.metric for invariant in scenario.invariants}
        assert {"time_rel_err", "exposed_delta_frac", "eu_slowdown_frac"} <= metrics


class TestKnobsDocCrossReference:
    """docs/KNOBS.md is the authoritative knob table; this test keeps it from
    rotting by requiring every code-level knob name to appear in it."""

    @pytest.fixture(scope="class")
    def knob_tokens(self):
        doc = Path(__file__).resolve().parents[1] / "docs" / "KNOBS.md"
        assert doc.is_file(), "docs/KNOBS.md is missing"
        return set(re.findall(r"`([^`]+)`", doc.read_text(encoding="utf-8")))

    def test_every_simjob_field_is_documented(self, knob_tokens):
        from dataclasses import fields as dataclass_fields

        for spec_field in dataclass_fields(SimJob):
            assert spec_field.name in knob_tokens, (
                f"SimJob field {spec_field.name!r} is not documented in docs/KNOBS.md"
            )

    def test_every_config_scalar_override_is_documented(self, knob_tokens):
        from repro.runner.job import _CONFIG_SCALARS, _CONFIG_SECTIONS

        for name in _CONFIG_SCALARS + _CONFIG_SECTIONS:
            assert name in knob_tokens, (
                f"override knob {name!r} is not documented in docs/KNOBS.md"
            )

    def test_every_backend_name_is_documented(self, knob_tokens):
        from repro.network.backend import backend_names

        for name in compute_backend_names() + backend_names() + ("auto",):
            assert name in knob_tokens, (
                f"backend name {name!r} is not documented in docs/KNOBS.md"
            )

    def test_every_suite_kind_is_documented(self, knob_tokens):
        from repro.scenarios.schema import SUITE_KINDS

        for kind in SUITE_KINDS:
            assert kind in knob_tokens, (
                f"suite kind {kind!r} is not documented in docs/KNOBS.md"
            )

    def test_runtime_environment_variables_are_documented(self, knob_tokens):
        for name in (
            "REPRO_WORKERS",
            "REPRO_CACHE_DIR",
            "REPRO_DAEMON",
            "REPRO_DAEMON_HOST",
            "REPRO_DAEMON_PORT",
            "REPRO_SCENARIOS_DIR",
            "REPRO_TRACES_DIR",
        ):
            assert name in knob_tokens, (
                f"environment variable {name!r} is not documented in docs/KNOBS.md"
            )
