"""Kernel cost models, roofline and the NPU compute engine."""

import pytest

from repro.compute.kernels import (
    KernelCost,
    combine,
    conv2d_cost,
    elementwise_cost,
    embedding_lookup_cost,
    gemm_cost,
    lstm_cell_cost,
)
from repro.compute.npu import NpuComputeEngine
from repro.compute.roofline import RooflineModel
from repro.config.presets import make_system
from repro.errors import ConfigurationError, WorkloadError


class TestKernelCosts:
    def test_gemm_flops(self):
        cost = gemm_cost(1000, 1000, 1000)
        assert cost.flops == pytest.approx(2e9)
        assert cost.bytes_read > 0 and cost.bytes_written > 0

    def test_conv_flops_match_resnet_conv1(self):
        # ResNet-50 conv1: 7x7, 3->64 channels, 112x112 output, ~0.24 GFLOP/sample.
        cost = conv2d_cost(1, 3, 64, 112, 112, 7)
        assert cost.flops == pytest.approx(0.236e9, rel=0.01)

    def test_embedding_lookup_is_memory_bound(self):
        cost = embedding_lookup_cost(10_000, 28, 64)
        assert cost.arithmetic_intensity < 1.0

    def test_gemm_is_compute_bound(self):
        cost = gemm_cost(4000, 4000, 4000)
        assert cost.arithmetic_intensity > 100.0

    def test_lstm_weight_refetch_per_step(self):
        short = lstm_cell_cost(128, 1024, seq_len=1)
        long = lstm_cell_cost(128, 1024, seq_len=10)
        assert long.bytes_read == pytest.approx(10 * short.bytes_read, rel=0.01)

    def test_traffic_factor_scales_bytes_not_flops(self):
        base = gemm_cost(100, 100, 100)
        scaled = gemm_cost(100, 100, 100, traffic_factor=3.0)
        assert scaled.flops == base.flops
        assert scaled.bytes_total == pytest.approx(3 * base.bytes_total)

    def test_scaled_helper(self):
        cost = elementwise_cost(1000).scaled(2.0)
        assert cost.flops == pytest.approx(2000.0)

    def test_combine_adds_costs(self):
        a = gemm_cost(100, 100, 100)
        b = elementwise_cost(100)
        both = combine("fused", a, b)
        assert both.flops == pytest.approx(a.flops + b.flops)
        assert both.bytes_total == pytest.approx(a.bytes_total + b.bytes_total)

    def test_invalid_inputs(self):
        with pytest.raises(WorkloadError):
            gemm_cost(0, 10, 10)
        with pytest.raises(WorkloadError):
            conv2d_cost(1, 0, 64, 10, 10, 3)
        with pytest.raises(WorkloadError):
            KernelCost("bad", -1.0, 0, 0)
        with pytest.raises(WorkloadError):
            KernelCost("bad", 1.0, 0, 0, compute_efficiency=0.0)
        with pytest.raises(WorkloadError):
            combine("empty")


class TestRoofline:
    def test_compute_bound_kernel(self):
        model = RooflineModel(tflops=100.0, memory_bandwidth_gbps=900.0, kernel_launch_overhead_ns=0.0)
        cost = gemm_cost(4000, 4000, 4000, efficiency=1.0)
        assert not model.is_memory_bound(cost)
        assert model.kernel_time_ns(cost) == pytest.approx(cost.flops / 100e12 * 1e9)

    def test_memory_bound_kernel(self):
        model = RooflineModel(tflops=100.0, memory_bandwidth_gbps=100.0, kernel_launch_overhead_ns=0.0)
        cost = embedding_lookup_cost(10_000, 28, 64)
        assert model.is_memory_bound(cost)
        assert model.kernel_time_ns(cost) == pytest.approx(cost.bytes_total / 100.0)

    def test_less_bandwidth_slows_memory_bound_kernels(self):
        cost = embedding_lookup_cost(10_000, 28, 64)
        fast = RooflineModel(tflops=100.0, memory_bandwidth_gbps=772.0)
        slow = RooflineModel(tflops=100.0, memory_bandwidth_gbps=450.0)
        assert slow.kernel_time_ns(cost) > fast.kernel_time_ns(cost)

    def test_launch_overhead_added(self):
        model = RooflineModel(tflops=100.0, memory_bandwidth_gbps=900.0, kernel_launch_overhead_ns=5000.0)
        cost = elementwise_cost(10)
        assert model.kernel_time_ns(cost) >= 5000.0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            RooflineModel(tflops=0.0, memory_bandwidth_gbps=900.0)


class TestNpuComputeEngine:
    def test_sequential_execution(self):
        engine = NpuComputeEngine(make_system("ace"))
        cost = gemm_cost(1000, 1000, 1000)
        s1, f1 = engine.execute(cost, 0.0)
        s2, f2 = engine.execute(cost, 0.0)
        assert s2 == pytest.approx(f1)
        assert engine.total_compute_ns == pytest.approx((f1 - s1) + (f2 - s2))

    def test_comm_opt_compute_is_slower_than_ace(self):
        cost = conv2d_cost(32, 256, 256, 14, 14, 3)
        ace_time = NpuComputeEngine(make_system("ace")).task_time_ns(cost)
        comm_opt_time = NpuComputeEngine(make_system("baseline_comm_opt")).task_time_ns(cost)
        assert comm_opt_time >= ace_time

    def test_time_scale(self):
        cost = gemm_cost(1000, 1000, 1000)
        base = NpuComputeEngine(make_system("ace")).task_time_ns(cost)
        scaled = NpuComputeEngine(make_system("ace"), time_scale=0.5).task_time_ns(cost)
        assert scaled == pytest.approx(0.5 * base)

    def test_utilization_and_reset(self):
        engine = NpuComputeEngine(make_system("ideal"))
        engine.execute(gemm_cost(500, 500, 500), 0.0)
        assert 0.0 < engine.utilization(engine.busy_until) <= 1.0
        assert len(engine.task_log) == 1
        engine.reset()
        assert engine.total_compute_ns == 0.0
        assert engine.task_log == []
