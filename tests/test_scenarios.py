"""Scenario manifests, invariants, and the ``python -m repro`` CLI.

Covers the manifest schema (round-trip, unknown-field/bad-spec errors),
compilation into SimJob batches (byte-identical to the hand-written harness
jobs for the paper grid), invariant checking (violation and typo'd-metric
detection), the CLI subcommands end to end via subprocess, and a hypothesis
property that any generated manifest compiles to hashable jobs.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, InvariantViolation, ScenarioError
from repro.experiments.common import PAPER_SYSTEMS, grid_jobs
from repro.runner import ResultCache, SimJob, SweepRunner
from repro.scenarios import (
    Invariant,
    Scenario,
    check_invariants,
    compile_scenario,
    discover_scenarios,
    enforce_invariants,
    find_scenario,
    load_scenario_file,
    run_scenario,
    scenario_jobs,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SCENARIO_DIR = REPO_ROOT / "scenarios"
GOLDEN_PATH = Path(__file__).parent / "golden_values.json"


def minimal_manifest(**overrides) -> dict:
    data = {
        "schema": 1,
        "name": "tiny",
        "description": "a minimal scenario",
        "suites": [{"kind": "area_power"}],
    }
    data.update(overrides)
    return data


# ---------------------------------------------------------------------------
# Schema: round trip and validation errors
# ---------------------------------------------------------------------------


class TestSchema:
    def test_round_trip_minimal(self):
        scenario = Scenario.from_dict(minimal_manifest())
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_round_trip_every_shipped_manifest(self):
        scenarios = discover_scenarios(SCENARIO_DIR)
        assert len(scenarios) >= 10
        for scenario in scenarios:
            assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_unknown_top_level_field(self):
        with pytest.raises(ScenarioError, match=r"unknown field\(s\) \['grids'\]"):
            Scenario.from_dict(minimal_manifest(grids=[]))

    def test_missing_schema_version(self):
        data = minimal_manifest()
        del data["schema"]
        with pytest.raises(ScenarioError, match="'schema' is missing"):
            Scenario.from_dict(data)

    def test_unsupported_schema_version(self):
        with pytest.raises(ScenarioError, match="unsupported schema version 99"):
            Scenario.from_dict(minimal_manifest(schema=99))

    def test_bad_name_slug(self):
        with pytest.raises(ScenarioError, match="lowercase slug"):
            Scenario.from_dict(minimal_manifest(name="Not A Slug"))

    def test_empty_description(self):
        with pytest.raises(ScenarioError, match="non-empty 'description'"):
            Scenario.from_dict(minimal_manifest(description=""))

    def test_unknown_suite_kind(self):
        data = minimal_manifest(suites=[{"kind": "quantum_grid"}])
        with pytest.raises(ScenarioError, match="unknown suite kind 'quantum_grid'"):
            Scenario.from_dict(data)

    def test_unknown_suite_field_names_the_field_and_suite(self):
        data = minimal_manifest(
            suites=[{"kind": "training_grid", "workloadz": ["resnet50"]}]
        )
        with pytest.raises(ScenarioError, match=r"suite #0.*workloadz"):
            Scenario.from_dict(data)

    def test_suite_field_type_error(self):
        data = minimal_manifest(suites=[{"kind": "training_grid", "sizes": "16"}])
        with pytest.raises(ScenarioError, match="'sizes' must be a list of integers"):
            Scenario.from_dict(data)

    def test_network_drive_requires_payload_and_fabrics(self):
        data = minimal_manifest(suites=[{"kind": "network_drive", "fabrics": ["ring:4"]}])
        with pytest.raises(ScenarioError, match="'payload_bytes' is missing"):
            Scenario.from_dict(data)

    def test_unknown_invariant_kind(self):
        data = minimal_manifest(invariants=[{"kind": "monotone", "metric": "x"}])
        with pytest.raises(ScenarioError, match="unknown invariant kind 'monotone'"):
            Scenario.from_dict(data)

    def test_ordering_needs_two_names(self):
        data = minimal_manifest(
            invariants=[{"kind": "ordering", "metric": "x", "order": ["only"]}]
        )
        with pytest.raises(ScenarioError, match="at least two names"):
            Scenario.from_dict(data)

    def test_bound_needs_min_or_max(self):
        data = minimal_manifest(invariants=[{"kind": "bound", "metric": "x"}])
        with pytest.raises(ScenarioError, match="'min' and/or 'max'"):
            Scenario.from_dict(data)

    def test_suites_must_be_non_empty(self):
        with pytest.raises(ScenarioError, match="non-empty list"):
            Scenario.from_dict(minimal_manifest(suites=[]))


# ---------------------------------------------------------------------------
# Loader: files, discovery, compilation
# ---------------------------------------------------------------------------


class TestLoader:
    def test_bad_json_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ScenarioError, match="not valid JSON"):
            load_scenario_file(path)

    def test_name_must_match_file_stem(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps(minimal_manifest()), encoding="utf-8")
        with pytest.raises(ScenarioError, match="must match the file stem"):
            load_scenario_file(path)

    def test_find_scenario_lists_available(self, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(minimal_manifest()), encoding="utf-8")
        with pytest.raises(ScenarioError, match=r"available: \['tiny'\]"):
            find_scenario("nope", tmp_path)

    def test_bad_fabric_spec_is_wrapped_with_context(self):
        data = minimal_manifest(
            suites=[
                {
                    "kind": "network_drive",
                    "payload_bytes": 1024,
                    "fabrics": ["torus:not-a-shape"],
                }
            ]
        )
        scenario = Scenario.from_dict(data)
        with pytest.raises(ScenarioError, match="suite #0"):
            compile_scenario(scenario)

    def test_unknown_figure_name(self):
        data = minimal_manifest(suites=[{"kind": "figure", "figure": "fig99"}])
        scenario = Scenario.from_dict(data)
        with pytest.raises(ScenarioError, match="unknown figure 'fig99'"):
            compile_scenario(scenario)

    def test_unknown_system_name_fails_at_compile_time(self):
        data = minimal_manifest(
            suites=[{"kind": "training_grid", "systems": ["acee"], "sizes": [16]}]
        )
        with pytest.raises(ScenarioError, match=r"unknown system name\(s\) \['acee'\]"):
            compile_scenario(Scenario.from_dict(data))

    def test_unknown_workload_name_fails_at_compile_time(self):
        data = minimal_manifest(
            suites=[{"kind": "training_grid", "workloads": ["resnet51"], "sizes": [16]}]
        )
        with pytest.raises(ScenarioError, match="unknown workload name"):
            compile_scenario(Scenario.from_dict(data))

    def test_unknown_ace_override_field_fails_at_compile_time(self):
        data = minimal_manifest(suites=[{"kind": "area_power", "ace": {"sram_mbz": 8}}])
        with pytest.raises(ScenarioError, match=r"unknown AceConfig field\(s\) \['sram_mbz'\]"):
            compile_scenario(Scenario.from_dict(data))

    def test_fast_flag_rejected_for_fastless_figure(self):
        data = minimal_manifest(
            suites=[{"kind": "figure", "figure": "table4", "fast": False}]
        )
        with pytest.raises(ScenarioError, match="no fast/paper-scale mode"):
            compile_scenario(Scenario.from_dict(data))

    def test_unknown_figure_option(self):
        data = minimal_manifest(
            suites=[{"kind": "figure", "figure": "fig10", "options": {"bogus": 1}}]
        )
        scenario = Scenario.from_dict(data)
        with pytest.raises(ScenarioError, match=r"does not accept option\(s\) \['bogus'\]"):
            compile_scenario(scenario)

    def test_every_shipped_manifest_compiles(self):
        for scenario in discover_scenarios(SCENARIO_DIR):
            compiled = compile_scenario(scenario)
            assert compiled, scenario.name

    def test_paper_fast_compiles_to_harness_identical_jobs(self):
        """Acceptance: the manifest path produces byte-identical spec hashes."""
        scenario = find_scenario("paper-fast", SCENARIO_DIR)
        manifest_jobs = scenario_jobs(scenario)
        harness_jobs = grid_jobs(
            systems=PAPER_SYSTEMS, workloads=("resnet50",), sizes=(16,), fast=True
        )
        assert [job.to_json() for job in manifest_jobs] == [
            job.to_json() for job in harness_jobs
        ]
        assert [job.spec_hash() for job in manifest_jobs] == [
            job.spec_hash() for job in harness_jobs
        ]

    def test_fig11_manifest_matches_fast_harness_grid(self):
        scenario = find_scenario("fig11-scaling", SCENARIO_DIR)
        manifest_jobs = scenario_jobs(scenario)
        harness_jobs = grid_jobs(
            systems=PAPER_SYSTEMS,
            workloads=("resnet50", "dlrm"),
            sizes=(16, 64),
            fast=True,
        )
        assert [job.spec_hash() for job in manifest_jobs] == [
            job.spec_hash() for job in harness_jobs
        ]

    def test_sweep_expansion_matches_hand_enumerated_grids(self):
        """A ``sweep`` block is byte-identical to one ``grid_jobs`` batch per
        outer-axis cell (fabric x backend x algorithm x parallelism), so
        sweep-expanded specs hit exactly the cache keys a hand-written
        harness would."""
        scenario = Scenario.from_dict(
            {
                "schema": 1,
                "name": "sweep-equivalence",
                "description": "sweep templating equivalence fixture",
                "suites": [
                    {
                        "kind": "sweep",
                        "systems": ["ace", "ideal"],
                        "workloads": ["resnet50", "gnmt"],
                        "sizes": [16, 32],
                        "backends": [None, "hybrid"],
                        "algorithms": ["auto", "ring"],
                        "parallelisms": [None, "zero", "pipeline:4x8"],
                        "iterations": 1,
                        "fast": True,
                    }
                ],
            }
        )
        manifest_jobs = scenario_jobs(scenario)
        harness_jobs = []
        for backend in (None, "hybrid"):
            for algorithm in ("auto", "ring"):
                for parallelism in (None, "zero", "pipeline:4x8"):
                    harness_jobs.extend(
                        grid_jobs(
                            systems=("ace", "ideal"),
                            workloads=("resnet50", "gnmt"),
                            sizes=(16, 32),
                            iterations=1,
                            fast=True,
                            backend=backend,
                            algorithm=algorithm,
                            parallelism=parallelism,
                        )
                    )
        assert len(manifest_jobs) == 96
        assert [job.to_json() for job in manifest_jobs] == [
            job.to_json() for job in harness_jobs
        ]
        assert [job.spec_hash() for job in manifest_jobs] == [
            job.spec_hash() for job in harness_jobs
        ]

    def test_sweep_rejects_pipeline_over_embedding_workloads(self):
        scenario = Scenario.from_dict(
            {
                "schema": 1,
                "name": "sweep-bad",
                "description": "pipeline cannot span dlrm embedding exchange",
                "suites": [
                    {
                        "kind": "sweep",
                        "workloads": ["dlrm"],
                        "parallelisms": ["pipeline:2x4"],
                    }
                ],
            }
        )
        with pytest.raises(ConfigurationError, match="pipeline"):
            scenario_jobs(scenario)


# ---------------------------------------------------------------------------
# Invariants
# ---------------------------------------------------------------------------

ROWS = [
    {"system": "Ideal", "workload": "w", "npus": 16, "iteration_time_us": 10.0},
    {"system": "ACE", "workload": "w", "npus": 16, "iteration_time_us": 12.0},
    {"system": "Baseline", "workload": "w", "npus": 16, "iteration_time_us": 15.0},
]


class TestInvariants:
    def test_ordering_holds(self):
        invariant = Invariant(
            kind="ordering",
            metric="iteration_time_us",
            order=("Ideal", "ACE", "Baseline"),
        )
        scenario = Scenario.from_dict(minimal_manifest())
        records = check_invariants(
            Scenario(
                name=scenario.name,
                description=scenario.description,
                suites=scenario.suites,
                invariants=(invariant,),
            ),
            ROWS,
        )
        assert records[0]["ok"], records[0]["detail"]

    def test_ordering_violation_names_the_pair(self):
        invariant = Invariant(
            kind="ordering",
            metric="iteration_time_us",
            order=("Baseline", "Ideal"),
        )
        scenario = Scenario.from_dict(minimal_manifest())
        bad = Scenario(
            name=scenario.name,
            description=scenario.description,
            suites=scenario.suites,
            invariants=(invariant,),
        )
        with pytest.raises(InvariantViolation, match="Baseline=15 > Ideal=10"):
            enforce_invariants(bad, ROWS)

    def test_bound_violation(self):
        invariant = Invariant(kind="bound", metric="iteration_time_us", max=11.0)
        record = check_invariants(
            Scenario(name="x", description="d", invariants=(invariant,)), ROWS
        )[0]
        assert not record["ok"]
        assert "> max 11.0" in record["detail"]

    def test_positive_violation(self):
        invariant = Invariant(kind="positive", metric="iteration_time_us")
        rows = ROWS + [{"system": "Broken", "iteration_time_us": 0.0}]
        record = check_invariants(
            Scenario(name="x", description="d", invariants=(invariant,)), rows
        )[0]
        assert not record["ok"]

    def test_typo_metric_is_a_failure_not_a_pass(self):
        invariant = Invariant(kind="positive", metric="iteration_time_uz")
        record = check_invariants(
            Scenario(name="x", description="d", invariants=(invariant,)), ROWS
        )[0]
        assert not record["ok"]
        assert "no result row carries metric" in record["detail"]

    def test_where_filter_restricts_rows(self):
        invariant = Invariant(
            kind="bound",
            metric="iteration_time_us",
            max=11.0,
            where={"system": "Ideal"},
        )
        record = check_invariants(
            Scenario(name="x", description="d", invariants=(invariant,)), ROWS
        )[0]
        assert record["ok"], record["detail"]


# ---------------------------------------------------------------------------
# Execution: manifest path reproduces the golden grid numbers
# ---------------------------------------------------------------------------


class TestRunScenario:
    def test_paper_fast_reproduces_golden_values(self):
        scenario = find_scenario("paper-fast", SCENARIO_DIR)
        runner = SweepRunner(workers=1, cache=ResultCache())
        report = run_scenario(scenario, runner=runner)
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        expected = golden["grid_resnet50_16npus_iteration_us"]
        actual = {
            row["system"]: row["iteration_time_us"] for row in report["results"]
        }
        assert set(actual) == set(expected)
        for system, value in expected.items():
            assert actual[system] == pytest.approx(value, rel=1e-9), system
        for record in report["invariants"]:
            assert record["ok"], record
        for row in report["results"]:
            assert len(row["spec_hash"]) == 64
            assert row["wall_s"] >= 0.0

    def test_report_shape_matches_bench_convention(self):
        scenario = find_scenario("table4-area", SCENARIO_DIR)
        report = run_scenario(scenario, runner=SweepRunner(workers=1))
        for key in ("benchmark", "scenario", "spec_version", "wall_s", "results"):
            assert key in report
        assert report["benchmark"] == "scenario:table4-area"
        for row in report["results"]:
            assert "spec_hash" in row and "wall_s" in row

    def test_invariant_violation_carries_the_report(self, tmp_path):
        data = minimal_manifest(
            name="impossible",
            invariants=[{"kind": "bound", "metric": "area_um2", "max": 0.0}],
        )
        scenario = Scenario.from_dict(data)
        with pytest.raises(InvariantViolation) as excinfo:
            run_scenario(scenario, runner=SweepRunner(workers=1))
        assert excinfo.value.report["results"]


# ---------------------------------------------------------------------------
# CLI subprocess smoke
# ---------------------------------------------------------------------------


def run_cli(*args, cwd=REPO_ROOT, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.setdefault("REPRO_WORKERS", "1")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=str(cwd),
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestCli:
    def test_list_shows_all_scenarios(self):
        proc = run_cli("list")
        assert proc.returncode == 0, proc.stderr
        for name in ("paper-fast", "cross-topology", "megatron-tp-scaling"):
            assert name in proc.stdout
        count = len(list(SCENARIO_DIR.glob("*.json")))
        assert count >= 10
        assert f"{count} scenario(s)" in proc.stdout

    def test_validate_all_manifests(self):
        proc = run_cli("validate")
        assert proc.returncode == 0, proc.stderr
        assert "manifest(s) valid" in proc.stdout

    def test_validate_reports_broken_manifest(self, tmp_path):
        (tmp_path / "bad.json").write_text(
            json.dumps(minimal_manifest(name="bad", extra_field=1)), encoding="utf-8"
        )
        proc = run_cli("validate", "--dir", str(tmp_path))
        assert proc.returncode == 1
        assert "extra_field" in proc.stdout + proc.stderr

    def test_run_writes_report(self, tmp_path):
        (tmp_path / "tiny.json").write_text(
            json.dumps(minimal_manifest()), encoding="utf-8"
        )
        out = tmp_path / "report.json"
        proc = run_cli("run", "tiny", "--dir", str(tmp_path), "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["scenario"] == "tiny"
        assert report["results"]

    def test_run_fails_on_violated_invariant_but_writes_report(self, tmp_path):
        data = minimal_manifest(
            name="tiny",
            invariants=[{"kind": "bound", "metric": "area_um2", "max": 0.0}],
        )
        (tmp_path / "tiny.json").write_text(json.dumps(data), encoding="utf-8")
        out = tmp_path / "report.json"
        proc = run_cli("run", "tiny", "--dir", str(tmp_path), "--out", str(out))
        assert proc.returncode == 1
        assert "invariant" in (proc.stdout + proc.stderr).lower()
        assert out.is_file()

    def test_unknown_scenario_is_a_clean_error(self):
        proc = run_cli("run", "no-such-scenario")
        assert proc.returncode == 1
        assert "error:" in proc.stderr
        assert "Traceback" not in proc.stderr


# ---------------------------------------------------------------------------
# Property: generated manifests compile to hashable jobs
# ---------------------------------------------------------------------------

_SYSTEMS = st.lists(
    st.sampled_from(sorted(PAPER_SYSTEMS)), min_size=1, max_size=3, unique=True
)
_WORKLOADS = st.lists(
    st.sampled_from(["resnet50", "gnmt", "dlrm", "megatron"]),
    min_size=1,
    max_size=2,
    unique=True,
)
_SIZES = st.lists(
    st.sampled_from([8, 16, 32, 64, 128]), min_size=1, max_size=3, unique=True
)


@st.composite
def manifests(draw):
    suites = [
        {
            "kind": "training_grid",
            "systems": draw(_SYSTEMS),
            "workloads": draw(_WORKLOADS),
            "sizes": draw(_SIZES),
            "iterations": draw(st.integers(min_value=1, max_value=4)),
            "fast": draw(st.booleans()),
        }
    ]
    if draw(st.booleans()):
        suites.append(
            {
                "kind": "network_drive",
                "payload_bytes": draw(st.sampled_from([1 << 20, 8 << 20])),
                "fabrics": draw(
                    st.lists(
                        st.sampled_from(["ring:8", "switch:16", "fc:16", "torus:4x2x2"]),
                        min_size=1,
                        max_size=2,
                        unique=True,
                    )
                ),
            }
        )
    return {
        "schema": 1,
        "name": "generated",
        "description": "hypothesis-generated scenario",
        "suites": suites,
    }


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=manifests())
def test_generated_manifests_compile_to_hashable_jobs(data):
    scenario = Scenario.from_dict(data)
    assert Scenario.from_dict(scenario.to_dict()) == scenario
    jobs = scenario_jobs(scenario)
    assert jobs
    for job in jobs:
        assert isinstance(job, SimJob)
        assert isinstance(hash(job), int)
        assert job.spec_hash() == SimJob.from_json(job.to_json()).spec_hash()
        assert len(job.spec_hash()) == 64
    # Equal specs collide: a re-parsed copy hashes identically.
    reparsed_hashes = {hash(SimJob.from_json(job.to_json())) for job in jobs}
    assert reparsed_hashes == {hash(job) for job in jobs}
