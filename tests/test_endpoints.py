"""Endpoint models: baseline, ACE and ideal."""

import pytest

from repro.collectives.planner import plan_collective
from repro.config.presets import make_system
from repro.endpoint import AceEndpoint, BaselineEndpoint, IdealEndpoint, make_endpoint
from repro.endpoint.base import PhaseWork
from repro.errors import ConfigurationError
from repro.units import KB


def _work(send=64 * KB, reduce=0.0, forward=0.0, kind="all_gather", is_last=False):
    return PhaseWork(
        phase_index=0,
        phase_name="phase0",
        dimension="local",
        kind=kind,
        steps=3,
        send_bytes=send,
        reduce_bytes=reduce,
        forward_bytes=forward,
        is_first=True,
        is_last=is_last,
    )


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("baseline_comm_opt", BaselineEndpoint),
            ("baseline_comp_opt", BaselineEndpoint),
            ("baseline_no_overlap", BaselineEndpoint),
            ("ace", AceEndpoint),
            ("ideal", IdealEndpoint),
        ],
    )
    def test_factory_builds_matching_endpoint(self, name, cls):
        assert isinstance(make_endpoint(make_system(name)), cls)

    def test_ace_endpoint_rejects_wrong_config(self):
        with pytest.raises(ConfigurationError):
            AceEndpoint(make_system("ideal"))


class TestBaselineEndpoint:
    def test_reduce_step_reads_twice_the_sent_bytes(self):
        endpoint = BaselineEndpoint(make_system("baseline_comm_opt"))
        endpoint.process_phase(_work(send=100.0, reduce=100.0, kind="reduce_scatter"), 0.0)
        assert endpoint.memory_read_bytes == pytest.approx(200.0)

    def test_all_gather_step_reads_once(self):
        endpoint = BaselineEndpoint(make_system("baseline_comm_opt"))
        endpoint.process_phase(_work(send=100.0), 0.0)
        assert endpoint.memory_read_bytes == pytest.approx(100.0)

    def test_final_phase_writes_results(self):
        endpoint = BaselineEndpoint(make_system("baseline_comm_opt"))
        endpoint.process_phase(_work(send=100.0, is_last=True), 0.0)
        assert endpoint.memory_write_bytes == pytest.approx(100.0)

    def test_comp_opt_is_slower_than_comm_opt(self):
        comm_opt = BaselineEndpoint(make_system("baseline_comm_opt"))
        comp_opt = BaselineEndpoint(make_system("baseline_comp_opt"))
        big = _work(send=4 * 1024 * 1024, reduce=4 * 1024 * 1024, kind="reduce_scatter")
        assert comp_opt.process_phase(big, 0.0) > comm_opt.process_phase(big, 0.0)

    def test_ingress_and_egress_are_free(self):
        endpoint = BaselineEndpoint(make_system("baseline_comm_opt"))
        assert endpoint.ingress(64 * KB, 5.0) == 5.0
        assert endpoint.egress(64 * KB, 7.0) == 7.0

    def test_chunk_capacity_positive(self):
        assert BaselineEndpoint(make_system("baseline_comm_opt")).chunk_capacity() > 0

    def test_invalid_pipeline_depth(self):
        with pytest.raises(ConfigurationError):
            BaselineEndpoint(make_system("baseline_comm_opt"), pipeline_depth=0)


class TestIdealEndpoint:
    def test_single_cycle_stages(self):
        endpoint = IdealEndpoint(make_system("ideal"))
        cycle = 1e3 / 1245.0
        assert endpoint.ingress(64 * KB, 0.0) == pytest.approx(cycle)
        assert endpoint.process_phase(_work(), 10.0) == pytest.approx(10.0 + cycle)
        assert endpoint.egress(64 * KB, 20.0) == pytest.approx(20.0 + cycle)
        assert endpoint.memory_read_bytes == 0.0
        assert endpoint.memory_write_bytes == 0.0


class TestAceEndpoint:
    def _endpoint(self, torus):
        endpoint = AceEndpoint(make_system("ace"))
        endpoint.configure(plan_collective("all_reduce", torus))
        return endpoint

    def test_memory_traffic_is_payload_only(self, torus_444):
        endpoint = self._endpoint(torus_444)
        chunk = 64 * KB
        t = endpoint.ingress(chunk, 0.0)
        t = endpoint.process_phase(_work(send=48 * KB, reduce=48 * KB, kind="reduce_scatter"), t)
        t = endpoint.egress(chunk, t)
        assert endpoint.memory_read_bytes == pytest.approx(chunk)
        assert endpoint.memory_write_bytes == pytest.approx(chunk)

    def test_ace_reads_far_less_than_baseline_per_injected_byte(self, torus_444):
        ace = self._endpoint(torus_444)
        baseline = BaselineEndpoint(make_system("baseline_comm_opt"))
        chunk = 64 * KB
        plan = plan_collective("all_reduce", torus_444)
        ace.ingress(chunk, 0.0)
        t_b = 0.0
        for index, phase in enumerate(plan.phases):
            work = PhaseWork.from_phase(phase, index, chunk, index == 0, index == len(plan.phases) - 1)
            ace.process_phase(work, 0.0)
            t_b = baseline.process_phase(work, t_b)
        ace.egress(chunk, 0.0)
        injected = plan.total_injected_bytes(chunk)
        assert baseline.memory_read_bytes / injected == pytest.approx(1.5, rel=0.01)
        assert ace.memory_read_bytes / injected == pytest.approx(1 / 2.25, rel=0.01)
        # The ~3.5x memory bandwidth reduction of the paper's abstract.
        assert baseline.memory_read_bytes / ace.memory_read_bytes == pytest.approx(3.375, rel=0.01)

    def test_utilization_tracks_activity(self, torus_444):
        endpoint = self._endpoint(torus_444)
        endpoint.activity.record(0.0, 50.0)
        assert endpoint.utilization(100.0) == pytest.approx(0.5)

    def test_reset(self, torus_444):
        endpoint = self._endpoint(torus_444)
        endpoint.ingress(64 * KB, 0.0)
        endpoint.reset()
        assert endpoint.memory_read_bytes == 0.0
