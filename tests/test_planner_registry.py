"""Registry-based planner: capability predicates, auto-selection, cache identity."""

import pytest

from repro.collectives.base import CollectiveOp
from repro.collectives.planner import (
    algorithm_capabilities,
    algorithms,
    clear_plan_cache,
    estimate_plan_cost,
    plan_collective,
    supported_algorithms,
)
from repro.config.system import NetworkConfig
from repro.errors import CollectiveError
from repro.network.topology import (
    FullyConnected,
    RingTopology,
    SwitchTopology,
    Torus2D,
    Torus3D,
)


class TestRegistry:
    def test_all_algorithms_registered(self):
        assert set(algorithms()) == {
            "hierarchical",
            "direct",
            "ring",
            "tree",
            "halving_doubling",
            "p2p",
        }

    def test_paper_algorithms_registered_first(self):
        # Tie-break order in auto-selection: the paper's choices come first.
        assert algorithms()[:2] == ("hierarchical", "direct")

    def test_capabilities_on_torus(self, torus_444):
        caps = algorithm_capabilities("all_reduce", torus_444)
        assert caps["hierarchical"] is None
        assert caps["ring"] is None
        assert caps["tree"] is not None  # needs a single-hop fabric
        assert caps["direct"] is not None  # does not implement all_reduce

    def test_supported_algorithms_on_switch(self):
        assert supported_algorithms("all_reduce", SwitchTopology(16)) == [
            "ring",
            "tree",
            "halving_doubling",
        ]

    def test_halving_doubling_needs_power_of_two(self):
        caps = algorithm_capabilities("all_reduce", SwitchTopology(12))
        assert "power-of-two" in caps["halving_doubling"]
        assert caps["ring"] is None


class TestExplicitSelection:
    def test_explicit_hierarchical_matches_default(self, torus_444):
        assert plan_collective(
            "all_reduce", torus_444, algorithm="hierarchical"
        ) is plan_collective("all_reduce", torus_444)

    def test_explicit_ring_on_torus_charges_bottleneck_dimension(self, torus_444):
        plan = plan_collective("all_reduce", torus_444, algorithm="ring")
        assert len(plan.phases) == 1
        assert plan.phases[0].dimension in ("vertical", "horizontal")
        assert plan.phases[0].ring_size == 64

    def test_unknown_algorithm_name(self, torus_444):
        with pytest.raises(CollectiveError, match="unknown collective algorithm"):
            plan_collective("all_reduce", torus_444, algorithm="bruck")

    def test_unsupported_pairing_topology(self):
        with pytest.raises(CollectiveError, match="hierarchical"):
            plan_collective("all_reduce", SwitchTopology(16), algorithm="hierarchical")

    def test_unsupported_pairing_op(self, torus_444):
        with pytest.raises(CollectiveError, match="does not implement"):
            plan_collective("all_to_all", torus_444, algorithm="tree")

    def test_unsupported_op_name(self, torus_444):
        with pytest.raises(CollectiveError, match="unknown collective operation"):
            plan_collective("broadcast", torus_444, algorithm="hierarchical")

    def test_non_topology_rejected(self):
        with pytest.raises(CollectiveError, match="Topology"):
            plan_collective("all_reduce", 16)


class TestAutoSelection:
    def test_auto_picks_hierarchical_on_every_paper_torus(self):
        for shape in ((4, 2, 1), (4, 2, 2), (4, 4, 2), (4, 4, 4), (4, 8, 4), (4, 8, 8)):
            topology = Torus3D(*shape)
            auto = plan_collective("all_reduce", topology)
            hier = plan_collective("all_reduce", topology, algorithm="hierarchical")
            assert auto is hier, f"auto did not pick hierarchical on {topology.name}"

    def test_auto_picks_direct_all_to_all_on_torus(self, torus_444):
        auto = plan_collective("all_to_all", torus_444)
        assert auto is plan_collective("all_to_all", torus_444, algorithm="direct")

    def test_auto_beats_or_matches_every_explicit_choice(self, torus_444):
        auto_cost = estimate_plan_cost(plan_collective("all_reduce", torus_444))
        for name in supported_algorithms("all_reduce", torus_444):
            explicit = plan_collective("all_reduce", torus_444, algorithm=name)
            assert auto_cost <= estimate_plan_cost(explicit) + 1e-9

    def test_auto_on_large_switch_prefers_logarithmic(self):
        plan = plan_collective("all_reduce", SwitchTopology(64))
        # Halving-doubling: same bytes as ring, log(n) instead of 2(n-1) steps.
        assert plan.phases[0].steps == 6

    def test_no_feasible_algorithm_is_a_clear_error(self):
        with pytest.raises(CollectiveError, match="no registered algorithm"):
            plan_collective("all_to_all", RingTopology(8))

    def test_network_parameter_influences_cost_not_crash(self, torus_444):
        slow_local = NetworkConfig(intra_package_link_bandwidth_gbps=1.0)
        plan = plan_collective("all_reduce", torus_444, network=slow_local)
        assert plan.num_nodes == 64

    def test_ring_bottleneck_dimension_follows_the_costed_network(self, torus_444):
        # Default Table V provisioning: inter-package links are the bottleneck.
        default = plan_collective("all_reduce", torus_444, algorithm="ring")
        assert default.phases[0].dimension in ("vertical", "horizontal")
        # Invert the provisioning: now the local ring is slowest and the flat
        # ring must be charged to it instead.
        slow_local = NetworkConfig(intra_package_link_bandwidth_gbps=5.0)
        inverted = plan_collective(
            "all_reduce", torus_444, algorithm="ring", network=slow_local
        )
        assert inverted.phases[0].dimension == "local"

    def test_algorithm_implements(self):
        from repro.collectives.planner import algorithm_implements

        assert algorithm_implements("hierarchical", "all_reduce")
        assert not algorithm_implements("hierarchical", "all_to_all")
        with pytest.raises(CollectiveError, match="unknown collective algorithm"):
            algorithm_implements("bruck", "all_reduce")


class TestPlanCache:
    def test_same_shape_same_class_shares_plan(self):
        a = plan_collective("all_reduce", Torus3D(4, 2, 2))
        b = plan_collective("all_reduce", Torus3D(4, 2, 2))
        assert a is b

    def test_torus2d_shares_cache_with_degenerate_torus3d(self):
        # Torus2D(V, H) is behaviourally Torus3D(1, V, H); they share plans.
        a = plan_collective("all_reduce", Torus2D(4, 4))
        b = plan_collective("all_reduce", Torus3D(1, 4, 4))
        assert a is b

    def test_topologies_sharing_a_node_count_do_not_collide(self):
        # Ring(16) and Switch(16) have the same "shape" (16 nodes) but must
        # cache distinct ring plans: traffic rides different dimensions.
        ring_plan = plan_collective("all_reduce", RingTopology(16), algorithm="ring")
        switch_plan = plan_collective("all_reduce", SwitchTopology(16), algorithm="ring")
        fc_plan = plan_collective("all_reduce", FullyConnected(16), algorithm="ring")
        assert ring_plan is not switch_plan
        assert switch_plan is not fc_plan
        assert ring_plan.phases[0].dimension == "local"
        assert switch_plan.phases[0].dimension == "switch"
        assert fc_plan.phases[0].dimension == "direct"

    def test_clear_plan_cache_resets_identity_not_value(self, torus_422):
        a = plan_collective("all_reduce", torus_422)
        clear_plan_cache()
        b = plan_collective("all_reduce", torus_422)
        assert a is not b
        assert a == b


class TestCostModel:
    def test_cost_positive_and_scales_with_payload(self, torus_444):
        plan = plan_collective("all_reduce", torus_444)
        small = estimate_plan_cost(plan, payload_bytes=1024)
        large = estimate_plan_cost(plan, payload_bytes=1024 * 1024)
        assert 0 < small < large

    def test_hierarchical_cheaper_than_flat_ring_on_torus(self, torus_444):
        hier = plan_collective("all_reduce", torus_444, algorithm="hierarchical")
        ring = plan_collective("all_reduce", torus_444, algorithm="ring")
        assert estimate_plan_cost(hier) < estimate_plan_cost(ring)


class TestRegistrationInvalidation:
    def test_registering_an_algorithm_drops_cached_auto_selections(self):
        from repro.collectives import planner

        topology = SwitchTopology(16)
        stale = plan_collective("all_reduce", topology)  # populates the auto cache
        auto_keys = [k for k in planner._PLAN_CACHE if k[1] == planner.AUTO]
        assert auto_keys, "auto selection should have been cached"
        try:
            @planner.register_algorithm(
                "test_dummy", (CollectiveOp.ALL_REDUCE,), lambda op, t: "never feasible"
            )
            def _build(op, t, network):  # pragma: no cover - never feasible
                raise AssertionError

            assert not [k for k in planner._PLAN_CACHE if k[1] == planner.AUTO]
            assert plan_collective("all_reduce", topology) == stale  # re-selected
        finally:
            del planner._REGISTRY["test_dummy"]
            clear_plan_cache()

    def test_single_hop_all_to_all_rejects_multi_hop_fabrics(self):
        from repro.collectives.alltoall import single_hop_all_to_all_plan

        with pytest.raises(CollectiveError, match="one\\s?hop"):
            single_hop_all_to_all_plan(RingTopology(16))
