"""Coalesced/vectorized hot-path equivalence, hybrid-backend bounds, and
cache/accounting bugfix tests.

The detailed backend's sole-issuer coalescing and the bandwidth resource's
batched reservation paths are pure optimisations: they must not change any
simulated timing beyond the documented pipeline-fill bound.  These tests pin
that property across every planner algorithm on the paper's fabrics, bound
the hybrid backend against the fully detailed one, and cover the result-cache
maintenance fixes (``clear``/``__len__``/``stats`` must only ever see files
following the cache's naming scheme).
"""

from __future__ import annotations

import pytest

from repro.collectives.base import CollectiveOp
from repro.config.presets import make_system
from repro.errors import ConfigurationError, ResourceError
from repro.experiments.backend_validation import run_backend_validation
from repro.network import (
    MAX_DETAILED_NPUS,
    MAX_HYBRID_NPUS,
    topology_from_spec,
)
from repro.network.backend import VALIDATE_ACCOUNTING_ENV, make_network_backend
from repro.network.detailed import DetailedBackend
from repro.network.hybrid import HybridBackend, most_contended_dimension
from repro.runner import ResultCache, SimJob, SweepRunner
from repro.sim.engine import Simulator
from repro.sim.resources import BandwidthResource
from repro.training.comm import CollectiveExecutor
from repro.units import MB

#: (algorithm, fabric, op) cells covering all five planner algorithms on the
#: paper's torus shapes plus the switch/fully-connected fabrics the
#: single-hop algorithms require.
ALGORITHM_CELLS = (
    ("hierarchical", "torus:4x2x2", CollectiveOp.ALL_REDUCE),
    ("hierarchical", "torus:4x4x2", CollectiveOp.ALL_REDUCE),
    ("hierarchical", "torus:4x4x4", CollectiveOp.ALL_REDUCE),
    ("ring", "torus:4x2x2", CollectiveOp.ALL_REDUCE),
    ("ring", "torus:4x4x2", CollectiveOp.ALL_REDUCE),
    ("direct", "torus:4x2x2", CollectiveOp.ALL_TO_ALL),
    ("direct", "fc:16", CollectiveOp.ALL_REDUCE),
    ("tree", "switch:16", CollectiveOp.ALL_REDUCE),
    ("halving_doubling", "switch:16", CollectiveOp.ALL_REDUCE),
    ("halving_doubling", "fc:16", CollectiveOp.ALL_REDUCE),
)

#: Documented divergence bound for the coalesced path under multi-chunk
#: concurrency: one step's serialization per transfer (pipeline fill),
#: comfortably under a few percent on these payloads.
PIPELINE_FILL_REL_BOUND = 0.03


def _drive_collective(algorithm, fabric_spec, op, chunk_bytes, coalesce):
    """Completion time of one collective on a fresh detailed backend."""
    topology = topology_from_spec(fabric_spec)
    sim = Simulator()
    system = make_system("ace", algorithm=algorithm)
    fabric = DetailedBackend(topology, system.network, coalesce=coalesce)
    executor = CollectiveExecutor(
        sim, system, topology, fabric=fabric, chunk_bytes=chunk_bytes
    )
    handle = executor.issue(op, 8 * MB)
    sim.run()
    assert handle.completed_at is not None
    fabric.check_accounting(max(handle.completed_at, 1.0))
    return handle.completed_at


class TestCoalescingEquivalence:
    """Coalesced booking must track the per-message event path."""

    @pytest.mark.parametrize("algorithm,fabric,op", ALGORITHM_CELLS)
    def test_single_chunk_is_bit_exact(self, algorithm, fabric, op):
        """With one transfer in flight per step the coalesced path books the
        same FIFO timeline as per-message events — exactly, not just within
        tolerance."""
        coalesced = _drive_collective(algorithm, fabric, op, 8 * MB, True)
        reference = _drive_collective(algorithm, fabric, op, 8 * MB, False)
        assert coalesced == reference

    @pytest.mark.parametrize(
        "algorithm,fabric,op",
        (
            ("hierarchical", "torus:4x4x2", CollectiveOp.ALL_REDUCE),
            ("hierarchical", "torus:4x4x4", CollectiveOp.ALL_REDUCE),
            ("ring", "torus:4x2x2", CollectiveOp.ALL_REDUCE),
            ("direct", "fc:16", CollectiveOp.ALL_REDUCE),
            ("halving_doubling", "switch:16", CollectiveOp.ALL_REDUCE),
        ),
    )
    def test_chunked_within_pipeline_fill_bound(self, algorithm, fabric, op):
        """Pipelined chunks create genuine concurrency; the coalesced path may
        diverge by at most the documented pipeline-fill bound."""
        coalesced = _drive_collective(algorithm, fabric, op, 1 * MB, True)
        reference = _drive_collective(algorithm, fabric, op, 1 * MB, False)
        assert coalesced == pytest.approx(reference, rel=PIPELINE_FILL_REL_BOUND)


class TestReserveBatchEquivalence:
    """Both batch paths must book the timeline sequential reserve() books."""

    def _resource(self):
        return BandwidthResource(name="link", bandwidth_gbps=50.0, latency_ns=500.0)

    def _requests(self, count):
        # Mixed idle gaps and back-to-back pressure; earliest times
        # non-decreasing as the FIFO contract requires of callers.
        sizes = [float(1024 * (1 + (i % 7))) for i in range(count)]
        earliest = [float(200 * i if i % 3 else 150 * i) for i in range(count)]
        return sizes, earliest

    @pytest.mark.parametrize("count", (1, 7, 31, 32, 64, 200))
    def test_batch_matches_sequential(self, count):
        sizes, earliest = self._requests(count)
        sequential = self._resource()
        expected = [sequential.reserve(s, e) for s, e in zip(sizes, earliest)]
        batched = self._resource()
        starts, finishes = batched.reserve_batch(sizes, earliest)
        if count < BandwidthResource.SMALL_BATCH:
            # The scalar path replays reserve()'s arithmetic: bit-exact.
            assert [float(s) for s in starts] == [r.start for r in expected]
            assert [float(f) for f in finishes] == [r.finish for r in expected]
            assert batched.busy_time == sequential.busy_time
            assert batched.next_free == sequential.next_free
        else:
            # The vectorized path reassociates the running-max recurrence
            # through prefix sums; equal in exact arithmetic, so only
            # float rounding (ulps) may differ.
            for got, want in zip(starts, expected):
                assert float(got) == pytest.approx(want.start, rel=1e-12)
            for got, want in zip(finishes, expected):
                assert float(got) == pytest.approx(want.finish, rel=1e-12)
            assert batched.busy_time == pytest.approx(sequential.busy_time, rel=1e-12)
            assert batched.next_free == pytest.approx(sequential.next_free, rel=1e-12)
        assert batched.bytes_moved == sequential.bytes_moved

    def test_reserve_times_matches_reserve(self):
        by_reserve = self._resource()
        by_times = self._resource()
        for size, earliest in zip(*self._requests(16)):
            reservation = by_reserve.reserve(size, earliest)
            start, finish = by_times.reserve_times(size, earliest)
            assert (start, finish) == (reservation.start, reservation.finish)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ResourceError):
            self._resource().reserve_batch([1.0, 2.0], [0.0])

    def test_check_accounting_raises_on_overfull_horizon(self):
        resource = self._resource()
        resource.reserve(50.0 * 1000, 0.0)  # 1000 ns of serialization
        resource.check_accounting(1000.0)  # exactly full: fine
        with pytest.raises(ResourceError, match="busy"):
            resource.check_accounting(999.0)


class TestHybridBackend:
    def test_hot_dimension_is_deterministic(self):
        topology = topology_from_spec("torus:4x4x2")
        network = make_system("ace").network
        hot = most_contended_dimension(topology, network)
        assert hot in topology.active_dimensions()
        assert most_contended_dimension(topology, network) == hot
        backend = make_network_backend("hybrid", topology, network)
        assert isinstance(backend, HybridBackend)
        assert backend.hot_dimension == hot
        assert set(backend.dimensions) == set(topology.active_dimensions())

    def test_hybrid_tracks_detailed_within_validation_tolerance(self):
        """The new rung's analogue of the paper's model-validation claim:
        hybrid vs fully detailed agree within 5% on small cells."""
        rows = run_backend_validation(
            training_cells=(("resnet50", 8),),
            drive_cells=(
                ("torus:4x2x2", "all_reduce"),
                ("torus:4x4x2", "all_reduce"),
            ),
            runner=SweepRunner(cache=ResultCache()),
            backends=("detailed", "hybrid"),
        )
        assert len(rows) == 3
        for row in rows:
            assert float(row["time_rel_err"]) <= 0.05, row
            assert float(row["exposed_delta_frac"]) <= 0.05, row

    def test_hybrid_runs_past_the_detailed_cap(self):
        job = SimJob(
            system="ace",
            workload="resnet50",
            num_npus=1024,
            iterations=1,
            fabric="torus:8x16x8",
            backend="hybrid",
        )
        assert topology_from_spec("torus:8x16x8").num_nodes > MAX_DETAILED_NPUS
        result = job.execute()
        assert result.iteration_time_us > 0

    def test_backend_caps_are_enforced(self):
        network = make_system("ace").network
        past_detailed = topology_from_spec("torus:8x16x8")
        with pytest.raises(ConfigurationError, match="hybrid"):
            make_network_backend("detailed", past_detailed, network)
        past_hybrid = topology_from_spec("torus:16x16x16")
        assert past_hybrid.num_nodes > MAX_HYBRID_NPUS
        with pytest.raises(ConfigurationError, match="infeasible"):
            make_network_backend("hybrid", past_hybrid, network)

    def test_validation_rejects_a_non_pair(self):
        with pytest.raises(ConfigurationError, match="two distinct"):
            run_backend_validation(backends=("detailed",))
        with pytest.raises(ConfigurationError, match="two distinct"):
            run_backend_validation(backends=("detailed", "detailed"))


class TestSpecHashPinning:
    def test_backend_field_pins_the_hash(self):
        base = SimJob(workload="resnet50", num_npus=64)
        hybrid = SimJob(workload="resnet50", num_npus=64, backend="hybrid")
        detailed = SimJob(workload="resnet50", num_npus=64, backend="detailed")
        assert base.spec_hash() != hybrid.spec_hash()
        assert hybrid.spec_hash() != detailed.spec_hash()
        assert SimJob.from_json(hybrid.to_json()) == hybrid
        assert SimJob.from_json(hybrid.to_json()).spec_hash() == hybrid.spec_hash()

    def test_version_salt_pins_the_hash(self):
        job = SimJob(workload="resnet50", num_npus=64, backend="hybrid")
        assert job.spec_hash("v1") != job.spec_hash("v2")
        assert job.spec_hash("v1") == job.spec_hash("v1")


class TestCacheMaintenance:
    def _store_one(self, cache):
        job = SimJob(workload="resnet50", num_npus=8)
        cache.store(job, {"payload": 1})
        return job

    def test_clear_spares_foreign_json(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        self._store_one(cache)
        foreign = tmp_path / "notes.json"
        foreign.write_text("{}", encoding="utf-8")
        cache.clear()
        assert foreign.exists()
        assert len(cache) == 0
        assert not any(
            len(path.stem) == 64 for path in tmp_path.glob("*.json")
        )

    def test_len_and_stats_count_only_entries(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        self._store_one(cache)
        (tmp_path / "report.json").write_text("{}", encoding="utf-8")
        assert len(cache) == 1
        stats = cache.stats
        assert stats["entries"] == 1
        assert stats["disk_entries"] == 1
        assert stats["memory_entries"] == 1

    def test_memory_cache_counts_memory_entries(self):
        cache = ResultCache()
        self._store_one(cache)
        assert len(cache) == 1
        assert cache.stats["disk_entries"] == 0
        assert cache.stats["memory_entries"] == 1


class TestAccountingFlag:
    def test_flag_runs_accounting_checks_clean(self, monkeypatch):
        monkeypatch.setenv(VALIDATE_ACCOUNTING_ENV, "1")
        for backend in ("symmetric", "detailed", "hybrid"):
            job = SimJob(
                workload="resnet50", num_npus=16, iterations=1, backend=backend
            )
            assert job.execute().iteration_time_us > 0

    def test_flag_off_values(self, monkeypatch):
        from repro.network.backend import accounting_checks_enabled

        monkeypatch.delenv(VALIDATE_ACCOUNTING_ENV, raising=False)
        assert not accounting_checks_enabled()
        monkeypatch.setenv(VALIDATE_ACCOUNTING_ENV, "0")
        assert not accounting_checks_enabled()
        monkeypatch.setenv(VALIDATE_ACCOUNTING_ENV, "1")
        assert accounting_checks_enabled()
