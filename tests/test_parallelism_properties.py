"""Property-based tests (hypothesis) locking down the parallelism strategies.

Two families of invariants from the PR that added ``zero`` and ``pipeline``
strategies:

* **Byte conservation** — replacing each layer's weight-gradient all-reduce
  (data parallelism) with a reduce-scatter + parameter all-gather (ZeRO) must
  move exactly the same number of bytes over the wire on ring algorithms:
  ``(n-1)/n + (n-1)/n == 2(n-1)/n`` per payload byte, for *any* layer list.
* **Bubble accounting** — the closed form ``(S-1)/(M+S-1)`` used by the
  training loop must match the makespan of an explicitly constructed 1F1B
  schedule (warmup / steady-state / drain with real cross-stage dependencies)
  for *any* geometry, not just the hand-checked ones.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.base import CollectiveOp
from repro.collectives.planner import plan_collective
from repro.compute.kernels import KernelCost
from repro.errors import WorkloadError
from repro.network.topology import Torus3D
from repro.training.parallelism import (
    collectives_for_layer,
    one_f_one_b_schedule,
    parse_parallelism,
    pipeline_bubble_fraction,
    pipeline_stages,
)
from repro.workloads.base import Layer

# Keep hypothesis example counts modest so the suite stays fast.
DEFAULT_SETTINGS = settings(max_examples=40, deadline=None)


def _kernel(name: str, flops: float = 1e9) -> KernelCost:
    return KernelCost(name=name, flops=flops, bytes_read=1e6, bytes_written=1e6)


def _layer(index: int, params_bytes: int, flops: float = 1e9) -> Layer:
    return Layer(
        name=f"layer{index}",
        forward=_kernel(f"fwd{index}", flops),
        input_grad=_kernel(f"igrad{index}", flops),
        weight_grad=_kernel(f"wgrad{index}", flops),
        params_bytes=params_bytes,
    )


layer_lists = st.lists(
    st.integers(min_value=0, max_value=1 << 30), min_size=1, max_size=24
).map(lambda sizes: [_layer(i, size) for i, size in enumerate(sizes)])


# ----------------------------------------------------------------------
# Byte conservation: data vs zero
# ----------------------------------------------------------------------
@DEFAULT_SETTINGS
@given(layers=layer_lists)
def test_zero_requests_conserve_payload_bytes(layers):
    """Per layer, ZeRO's RS + AG request exactly the all-reduce's payload."""
    for layer in layers:
        data_reqs = collectives_for_layer(layer, "data")
        zero_reqs = collectives_for_layer(layer, "zero")
        data_payload = sum(r.payload_bytes for r in data_reqs)
        zero_payload = sum(r.payload_bytes for r in zero_reqs)
        if layer.params_bytes == 0:
            assert not data_reqs and not zero_reqs
            continue
        # One AR vs one RS + one AG over the same parameter bytes.
        assert [r.op for r in data_reqs] == [CollectiveOp.ALL_REDUCE]
        assert sorted(r.op.value for r in zero_reqs) == ["all_gather", "reduce_scatter"]
        assert zero_payload == 2 * data_payload
        assert all(r.payload_bytes == layer.params_bytes for r in zero_reqs)
        # RS rides the backward pass; AG gates the next forward.
        whens = {r.op: r.when for r in zero_reqs}
        assert whens[CollectiveOp.REDUCE_SCATTER] == "backward"
        assert whens[CollectiveOp.ALL_GATHER] == "forward_gather"


@DEFAULT_SETTINGS
@given(
    ring_size=st.integers(min_value=2, max_value=16),
    layers=layer_lists,
)
def test_zero_ring_wire_bytes_equal_data_parallel(ring_size, layers):
    """On a ring, RS + AG inject exactly the bytes of the AR they replace."""
    topology = Torus3D(ring_size, 1, 1)
    ar = plan_collective("all_reduce", topology, algorithm="ring")
    rs = plan_collective("reduce_scatter", topology, algorithm="ring")
    ag = plan_collective("all_gather", topology, algorithm="ring")
    assert rs.total_injected_fraction + ag.total_injected_fraction == pytest.approx(
        ar.total_injected_fraction, rel=1e-12
    )
    data_wire = 0.0
    zero_wire = 0.0
    for layer in layers:
        for request in collectives_for_layer(layer, "data"):
            data_wire += request.payload_bytes * ar.total_injected_fraction
        for request in collectives_for_layer(layer, "zero"):
            plan = rs if request.op is CollectiveOp.REDUCE_SCATTER else ag
            zero_wire += request.payload_bytes * plan.total_injected_fraction
    assert zero_wire == pytest.approx(data_wire, rel=1e-9)


# ----------------------------------------------------------------------
# 1F1B bubble accounting
# ----------------------------------------------------------------------
@DEFAULT_SETTINGS
@given(
    num_stages=st.integers(min_value=1, max_value=10),
    num_microbatches=st.integers(min_value=1, max_value=40),
)
def test_bubble_fraction_matches_explicit_1f1b_schedule(num_stages, num_microbatches):
    """Closed form (S-1)/(M+S-1) equals the real schedule's idle fraction."""
    makespan = one_f_one_b_schedule(num_stages, num_microbatches)
    # With unit fwd/bwd slots the schedule runs (M + S - 1) slot pairs.
    expected_makespan = 2.0 * (num_microbatches + num_stages - 1)
    assert makespan == pytest.approx(expected_makespan, rel=1e-12)
    busy = 2.0 * num_microbatches
    idle_fraction = (makespan - busy) / makespan
    assert idle_fraction == pytest.approx(
        pipeline_bubble_fraction(num_stages, num_microbatches), rel=1e-12
    )


@DEFAULT_SETTINGS
@given(
    num_stages=st.integers(min_value=1, max_value=8),
    num_microbatches=st.integers(min_value=1, max_value=24),
    slot=st.floats(min_value=0.25, max_value=8.0),
)
def test_bubble_fraction_is_slot_scale_invariant(num_stages, num_microbatches, slot):
    """Scaling all slot times scales the makespan; the fraction is unchanged."""
    base = one_f_one_b_schedule(num_stages, num_microbatches)
    scaled = one_f_one_b_schedule(
        num_stages, num_microbatches, forward_slot=slot, backward_slot=slot
    )
    assert scaled == pytest.approx(base * slot, rel=1e-9)


@DEFAULT_SETTINGS
@given(
    num_layers=st.integers(min_value=1, max_value=32),
    num_stages=st.integers(min_value=1, max_value=32),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_pipeline_stage_split_is_a_contiguous_partition(num_layers, num_stages, seed):
    """Stage splitting covers every layer exactly once, in order."""
    import random

    rng = random.Random(seed)
    layers = [
        _layer(i, 1024, flops=rng.uniform(1e8, 1e11)) for i in range(num_layers)
    ]
    if num_stages > num_layers:
        with pytest.raises(WorkloadError):
            pipeline_stages(layers, num_stages)
        return
    stages = pipeline_stages(layers, num_stages)
    assert len(stages) == num_stages
    assert all(stage for stage in stages)
    flattened = [layer for stage in stages for layer in stage]
    assert flattened == layers


@DEFAULT_SETTINGS
@given(
    num_stages=st.integers(min_value=1, max_value=64),
    num_microbatches=st.integers(min_value=1, max_value=64),
)
def test_pipeline_spec_round_trips(num_stages, num_microbatches):
    """parse_parallelism(spec.canonical()) is the identity on pipeline specs."""
    spec = parse_parallelism(f"pipeline:{num_stages}x{num_microbatches}")
    assert spec.stages == num_stages
    assert spec.microbatches == num_microbatches
    assert parse_parallelism(spec.canonical()) == spec
