"""Golden-value regression snapshots for the figure harnesses.

One fast cell per figure (iteration times per system at 16 NPUs, drive
bandwidths, DSE ratios, Table IV totals) is pinned to the exact values the
simulator produced when the snapshot was taken.  The simulator is fully
deterministic, so these comparisons are tight (rel=1e-9): any perf refactor
that silently changes simulated results — not just crashes — fails here.

To intentionally re-baseline after a modelled-behaviour change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_regression_golden.py -q

and commit the regenerated ``tests/golden_values.json`` together with the
change that motivated it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.common import PAPER_SYSTEMS, run_grid
from repro.experiments.fig4_microbench import run_fig4
from repro.experiments.fig5_membw_sweep import run_fig5
from repro.experiments.fig6_sm_sweep import run_fig6
from repro.experiments.fig9_dse import run_fig9a, run_fig9b
from repro.experiments.fig10_overlap import run_fig10
from repro.experiments.fig11_scaling import run_fig11
from repro.experiments.fig12_dlrm_opt import run_fig12
from repro.experiments.table4_area import run_table4
from repro.runner import ResultCache, SweepRunner
from repro.units import MB

GOLDEN_PATH = Path(__file__).parent / "golden_values.json"
UPDATE_ENV = "REPRO_UPDATE_GOLDEN"

#: Tolerance for comparisons.  The simulator is deterministic; the tolerance
#: only absorbs float-formatting of the snapshot itself.
REL_TOL = 1e-9


def compute_golden_values() -> dict:
    """One fast, 16-NPU cell per figure harness."""
    runner = SweepRunner(workers=1, cache=ResultCache())
    values: dict = {}

    grid = run_grid(
        systems=PAPER_SYSTEMS, workloads=("resnet50",), sizes=(16,), fast=True,
        runner=runner,
    )
    values["grid_resnet50_16npus_iteration_us"] = {
        r.system_name: r.iteration_time_us for r in grid
    }

    values["fig4_slowdowns"] = {
        r["case"]: r["slowdown"] for r in run_fig4(fast=True, runner=runner)
    }

    values["fig5_16npus"] = {
        str(r["memory_bw_gbps"]): {
            "baseline_net_bw_gbps": r["baseline_net_bw_gbps"],
            "ace_net_bw_gbps": r["ace_net_bw_gbps"],
            "ideal_net_bw_gbps": r["ideal_net_bw_gbps"],
        }
        for r in run_fig5(fast=True, sizes=(16,), payload_bytes=16 * MB, runner=runner)
    }

    values["fig6_16npus"] = {
        str(int(r["comm_sms"])): r["baseline_net_bw_gbps"]
        for r in run_fig6(fast=True, sizes=(16,), payload_bytes=16 * MB, runner=runner)
    }

    values["fig9a_performance_vs_reference"] = {
        f"{r['sram_mb']}MB_{r['num_fsms']}fsm": r["performance_vs_reference"]
        for r in run_fig9a(fast=True, sizes=(16,), runner=runner)
    }

    fig9b = run_fig9b(fast=True, workloads=("resnet50",), num_npus=16, runner=runner)[0]
    values["fig9b_resnet50_16npus"] = {
        "forward": fig9b["ace_util_forward"],
        "backward": fig9b["ace_util_backward"],
    }

    values["fig10_dlrm_16npus_iteration_us"] = {
        r["system"]: r["iteration_time_us"]
        for r in run_fig10(fast=True, workloads=("dlrm",), num_npus=16, runner=runner)
    }

    fig11 = run_fig11(fast=True, workloads=("dlrm",), sizes=(16,), runner=runner)
    values["fig11_dlrm_16npus_speedup_vs_best_baseline"] = fig11["speedups"][0][
        "speedup_vs_best_baseline"
    ]

    values["fig12_16npus_improvements"] = {
        r["system"]: r["total_time_us"]
        for r in run_fig12(fast=True, num_npus=16, runner=runner)
        if r["loop"] == "improvement"
    }

    table4 = run_table4(runner=runner)
    total = next(r for r in table4 if r["component"] == "ACE (Total)")
    values["table4_totals"] = {
        "area_um2": total["area_um2"],
        "power_mw": total["power_mw"],
        "overhead_area_pct": table4[-1]["area_um2"],
        "overhead_power_pct": table4[-1]["power_mw"],
    }
    return values


def assert_matches_golden(actual, golden, path=""):
    """Recursive exact-shape, tight-tolerance comparison with a useful path."""
    if isinstance(golden, dict):
        assert isinstance(actual, dict), f"{path}: expected mapping"
        assert set(actual) == set(golden), (
            f"{path}: keys changed (added {set(actual) - set(golden)}, "
            f"removed {set(golden) - set(actual)})"
        )
        for key in golden:
            assert_matches_golden(actual[key], golden[key], f"{path}/{key}")
    elif isinstance(golden, float):
        assert actual == pytest.approx(golden, rel=REL_TOL), (
            f"{path}: {actual!r} != golden {golden!r}"
        )
    else:
        assert actual == golden, f"{path}: {actual!r} != golden {golden!r}"


@pytest.fixture(scope="module")
def actual_values():
    return compute_golden_values()


@pytest.fixture(scope="module")
def golden_values(actual_values):
    if os.environ.get(UPDATE_ENV):
        GOLDEN_PATH.write_text(
            json.dumps(actual_values, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"{GOLDEN_PATH} is missing; regenerate it with {UPDATE_ENV}=1 "
            "(see the module docstring)"
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize(
    "key",
    [
        "grid_resnet50_16npus_iteration_us",
        "fig4_slowdowns",
        "fig5_16npus",
        "fig6_16npus",
        "fig9a_performance_vs_reference",
        "fig9b_resnet50_16npus",
        "fig10_dlrm_16npus_iteration_us",
        "fig11_dlrm_16npus_speedup_vs_best_baseline",
        "fig12_16npus_improvements",
        "table4_totals",
    ],
)
def test_golden(actual_values, golden_values, key):
    assert key in golden_values, (
        f"golden file has no entry {key!r}; regenerate with {UPDATE_ENV}=1"
    )
    assert_matches_golden(actual_values[key], golden_values[key], path=key)


def test_golden_file_has_no_stale_entries(actual_values, golden_values):
    assert set(golden_values) == set(actual_values)
