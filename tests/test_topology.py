"""Torus, ring, switch and fully-connected topologies plus the spec parser."""

import pytest

from repro.errors import TopologyError
from repro.network.topology import (
    FullyConnected,
    RingTopology,
    SwitchTopology,
    Torus2D,
    Torus3D,
    topology_from_spec,
    torus_from_shape,
)


class TestTorus3D:
    def test_node_count(self, torus_444):
        assert torus_444.num_nodes == 64
        assert torus_444.name == "4x4x4"

    def test_coordinate_roundtrip(self, torus_444):
        for node in torus_444.nodes():
            l, v, h = torus_444.coordinates(node)
            assert torus_444.node_id(l, v, h) == node

    def test_coordinates_out_of_range(self, torus_444):
        with pytest.raises(TopologyError):
            torus_444.coordinates(64)
        with pytest.raises(TopologyError):
            torus_444.node_id(4, 0, 0)

    def test_neighbor_along_wraps(self, torus_444):
        node = torus_444.node_id(3, 0, 0)
        assert torus_444.neighbor_along(node, "local", +1) == torus_444.node_id(0, 0, 0)
        assert torus_444.neighbor_along(node, "local", -1) == torus_444.node_id(2, 0, 0)

    def test_neighbors_count(self, torus_444):
        # Every node on a 4x4x4 torus has 2 neighbors per dimension.
        for node in (0, 13, 63):
            assert len(torus_444.neighbors(node)) == 6

    def test_neighbors_on_size2_dimension(self, torus_222):
        # A ring of size 2 has a single distinct peer per dimension.
        assert len(torus_222.neighbors(0)) == 3

    def test_ring_members(self, torus_444):
        members = torus_444.ring_members(0, "vertical")
        assert len(members) == 4
        assert members[0] == 0
        positions = [torus_444.ring_position(m, "vertical") for m in members]
        assert positions == [0, 1, 2, 3]

    def test_active_dimensions_skips_degenerate(self):
        torus = Torus3D(8, 1, 1)
        assert torus.active_dimensions() == ["local"]
        with pytest.raises(TopologyError):
            torus.neighbor_along(0, "vertical")

    def test_links_are_consistent(self, torus_422):
        links = torus_422.links()
        # Every directed link's endpoints are neighbors.
        for src, dst, dim in links:
            assert dst in torus_422.neighbors(src)
        # Local dimension contributes 2 directed links per node (ring of 4).
        local_links = [l for l in links if l[2] == "local"]
        assert len(local_links) == 2 * torus_422.num_nodes

    def test_degenerate_torus_rejected(self):
        with pytest.raises(TopologyError):
            Torus3D(1, 1, 1)
        with pytest.raises(TopologyError):
            Torus3D(0, 2, 2)

    def test_dimension_size_lookup(self, torus_422):
        assert torus_422.dimension_sizes() == {"local": 4, "vertical": 2, "horizontal": 2}
        with pytest.raises(TopologyError):
            torus_422.dimension_size("bogus")

    def test_torus_from_shape(self):
        torus = torus_from_shape((4, 8, 4))
        assert torus.num_nodes == 128
        with pytest.raises(TopologyError):
            torus_from_shape((4, 8))


class TestRingTopology:
    def test_neighbors(self):
        ring = RingTopology(4)
        assert set(ring.neighbors(0)) == {1, 3}
        assert ring.next_on_ring(3, +1) == 0

    def test_unidirectional(self):
        ring = RingTopology(4, bidirectional=False)
        assert ring.neighbors(1) == [2]

    def test_too_small(self):
        with pytest.raises(TopologyError):
            RingTopology(1)

    def test_bad_direction(self):
        with pytest.raises(TopologyError):
            RingTopology(4).next_on_ring(0, 2)


class TestSwitchTopology:
    def test_full_connectivity(self):
        switch = SwitchTopology(8)
        assert len(switch.neighbors(3)) == 7
        assert len(switch.links()) == 8 * 7

    def test_too_small(self):
        with pytest.raises(TopologyError):
            SwitchTopology(1)


class TestFullyConnected:
    def test_full_connectivity(self):
        fc = FullyConnected(8)
        assert len(fc.neighbors(3)) == 7
        assert len(fc.links()) == 8 * 7
        assert fc.active_dimensions() == ["direct"]
        assert fc.name == "fc-8"

    def test_too_small(self):
        with pytest.raises(TopologyError):
            FullyConnected(1)

    def test_cache_key_distinct_from_switch(self):
        assert FullyConnected(8).cache_key() != SwitchTopology(8).cache_key()


class TestTorus2D:
    def test_is_degenerate_torus3d(self):
        torus = Torus2D(4, 4)
        assert torus.num_nodes == 16
        assert torus.shape == (1, 4, 4)
        assert torus.active_dimensions() == ["vertical", "horizontal"]
        assert torus.name == "4x4"

    def test_shares_cache_key_with_equivalent_3d_shape(self):
        assert Torus2D(4, 4).cache_key() == Torus3D(1, 4, 4).cache_key()

    def test_neighbors_match_degenerate_3d(self):
        assert Torus2D(4, 4).neighbors(5) == Torus3D(1, 4, 4).neighbors(5)


class TestTopologyFromSpec:
    @pytest.mark.parametrize(
        "spec, cls, nodes",
        [
            ("torus:4x4x4", Torus3D, 64),
            ("4x2x2", Torus3D, 16),
            ("torus2d:8x8", Torus2D, 64),
            ("ring:16", RingTopology, 16),
            ("switch:64", SwitchTopology, 64),
            ("fc:16", FullyConnected, 16),
        ],
    )
    def test_valid_specs(self, spec, cls, nodes):
        topology = topology_from_spec(spec)
        assert isinstance(topology, cls)
        assert topology.num_nodes == nodes

    def test_topology_instance_passthrough(self, torus_444):
        assert topology_from_spec(torus_444) is torus_444

    def test_shape_tuple_accepted(self):
        assert topology_from_spec((4, 2, 2)).num_nodes == 16

    @pytest.mark.parametrize(
        "spec",
        ["mesh:4x4", "torus:4x4", "ring:banana", "ring:", "16", "torus2d:2x2x2"],
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(TopologyError):
            topology_from_spec(spec)
