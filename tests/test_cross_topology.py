"""Cross-topology sweep: runs through the SweepRunner, caches, paper's choice wins."""

import pytest

from repro.experiments.cross_topology import (
    best_algorithms,
    cross_topology_jobs,
    fabric_specs_for,
    run_cross_topology,
)
from repro.runner import ResultCache, SimJob, SweepRunner


@pytest.fixture(scope="module")
def sweep():
    """One 16-NPU sweep shared by the module, via a caching runner."""
    runner = SweepRunner(workers=1, cache=ResultCache())
    rows = run_cross_topology(sizes=(16,), systems=("ace",), runner=runner)
    return runner, rows


class TestJobConstruction:
    def test_fabric_specs_cover_all_five_topology_kinds(self):
        specs = fabric_specs_for(16)
        assert specs == [
            "torus:4x2x2",
            "torus2d:4x4",
            "ring:16",
            "switch:16",
            "fc:16",
        ]

    def test_only_feasible_pairings_are_emitted(self):
        jobs = cross_topology_jobs(sizes=(16,))
        pairs = {(job.fabric, job.algorithm) for job in jobs}
        assert ("torus:4x2x2", "hierarchical") in pairs
        assert ("torus:4x2x2", "ring") in pairs
        # Hierarchical never leaves the torus; tree never enters it.
        assert not any(a == "hierarchical" for f, a in pairs if not f.startswith("torus"))
        assert not any(a == "tree" for f, a in pairs if f.startswith("torus"))

    def test_jobs_are_valid_simjobs(self):
        for job in cross_topology_jobs(sizes=(16,)):
            assert isinstance(job, SimJob)
            assert job.kind == "network_drive"
            rebuilt = SimJob.from_json(job.to_json())
            assert rebuilt == job


class TestSweepResults:
    def test_rows_cover_every_fabric(self, sweep):
        _, rows = sweep
        assert {row["fabric"] for row in rows} == set(fabric_specs_for(16))
        assert all(row["duration_us"] > 0 for row in rows)

    def test_hierarchical_wins_on_its_home_turf(self, sweep):
        # The paper's choice: on the torus, the hierarchical 4-phase
        # all-reduce beats the flat ring embedding.
        _, rows = sweep
        winners = best_algorithms(rows)
        assert winners[("torus:4x2x2", "ace", 16)] == "hierarchical"
        assert winners[("torus2d:4x4", "ace", 16)] == "hierarchical"

    def test_cached_rerun_serves_every_cell_from_cache(self, sweep):
        runner, rows = sweep
        hits_before = runner.stats.cache_hits
        rerun = run_cross_topology(sizes=(16,), systems=("ace",), runner=runner)
        assert runner.stats.cache_hits == hits_before + len(rows)
        assert rerun == rows
