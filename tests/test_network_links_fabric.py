"""Links, messages and the multi-node fabric simulator."""

import pytest

from repro.config.system import NetworkConfig
from repro.errors import CollectiveError, RoutingError
from repro.network.fabric import FabricSimulator
from repro.network.links import Link, LinkKind
from repro.network.messages import new_chunk, new_message, split_payload
from repro.network.symmetric import SymmetricFabric
from repro.network.topology import Torus3D


class TestLink:
    def test_intra_vs_inter_package(self):
        net = NetworkConfig()
        local = Link(0, 1, "local", net)
        vertical = Link(0, 4, "vertical", net)
        assert local.kind is LinkKind.INTRA_PACKAGE
        assert vertical.kind is LinkKind.INTER_PACKAGE
        assert local.effective_bandwidth_gbps > vertical.effective_bandwidth_gbps
        assert local.latency_ns < vertical.latency_ns

    def test_link_efficiency_applied(self):
        net = NetworkConfig()
        link = Link(0, 1, "local", net)
        assert link.effective_bandwidth_gbps == pytest.approx(200.0 * 0.94)

    def test_reserve_accumulates_stats(self):
        link = Link(0, 1, "local", NetworkConfig(), traced=True)
        link.reserve(1000.0, 0.0)
        assert link.bytes_moved == 1000.0
        assert link.busy_time > 0.0
        assert link.tracer is not None


class TestMessages:
    def test_split_payload(self):
        assert split_payload(100, 64) == [64, 36]
        assert split_payload(128, 64) == [64, 64]
        with pytest.raises(CollectiveError):
            split_payload(0, 64)

    def test_message_packets(self):
        msg = new_message(chunk_id=0, size_bytes=1000, src=0, dst=1)
        packets = msg.packets(256)
        assert len(packets) == 4
        assert sum(p.size_bytes for p in packets) == 1000

    def test_chunk_phase_advance(self):
        chunk = new_chunk(collective_id=0, size_bytes=1024, num_phases=2)
        chunk.advance_phase()
        chunk.advance_phase()
        with pytest.raises(CollectiveError):
            chunk.advance_phase()

    def test_invalid_sizes(self):
        with pytest.raises(CollectiveError):
            new_chunk(0, 0, 1)
        with pytest.raises(CollectiveError):
            new_message(0, 0, 0, 1)


class TestFabricSimulator:
    def test_direct_send(self, torus_222):
        fabric = FabricSimulator(torus_222, NetworkConfig())
        delivery = fabric.send_direct(0, 1, 64 * 1024, 0.0)
        assert delivery.hops == 1
        assert delivery.arrived_at > delivery.departed_at

    def test_routed_send_hop_count(self, torus_444):
        fabric = FabricSimulator(torus_444, NetworkConfig())
        far = torus_444.node_id(2, 2, 2)
        delivery = fabric.send_routed(0, far, 4096, 0.0)
        assert delivery.hops == 6

    def test_routed_send_to_self(self, torus_222):
        fabric = FabricSimulator(torus_222, NetworkConfig())
        delivery = fabric.send_routed(3, 3, 1024, 5.0)
        assert delivery.hops == 0
        assert delivery.arrived_at == 5.0

    def test_unconnected_direct_send_rejected(self, torus_444):
        fabric = FabricSimulator(torus_444, NetworkConfig())
        far = torus_444.node_id(2, 2, 2)
        with pytest.raises(RoutingError):
            fabric.send_direct(0, far, 1024, 0.0)

    def test_bytes_accounting(self, torus_222):
        fabric = FabricSimulator(torus_222, NetworkConfig())
        fabric.send_routed(0, 7, 1000, 0.0)
        moved = fabric.total_bytes_moved()
        # Three hops (one per dimension) each carry the full message.
        assert moved == pytest.approx(3000.0)
        per_dim = fabric.per_dimension_bytes()
        assert set(per_dim) == {"local", "vertical", "horizontal"}

    def test_contention_serializes(self, torus_222):
        fabric = FabricSimulator(torus_222, NetworkConfig())
        first = fabric.send_direct(0, 1, 1024 * 1024, 0.0)
        second = fabric.send_direct(0, 1, 1024 * 1024, 0.0)
        assert second.departed_at >= first.arrived_at - fabric.link(0, 1, "local").latency_ns


class TestSymmetricFabric:
    def test_dimension_pipes_match_table5(self, torus_444):
        fabric = SymmetricFabric(torus_444, NetworkConfig())
        assert set(fabric.dimensions) == {"local", "vertical", "horizontal"}
        assert fabric.pipe("local").bandwidth_gbps == pytest.approx(376.0)
        assert fabric.pipe("vertical").bandwidth_gbps == pytest.approx(47.0)
        assert fabric.injection_bandwidth_gbps == pytest.approx(470.0)

    def test_degenerate_dimensions_absent(self):
        fabric = SymmetricFabric(Torus3D(8, 1, 1), NetworkConfig())
        assert fabric.dimensions == ["local"]
        assert not fabric.has_dimension("vertical")

    def test_utilization_and_bytes(self, torus_444):
        fabric = SymmetricFabric(torus_444, NetworkConfig())
        fabric.pipe("vertical").reserve(47_000.0, 0.0)  # 1000 ns of vertical traffic
        assert fabric.bytes_injected == pytest.approx(47_000.0)
        assert fabric.utilization(1000.0) == pytest.approx(1.0 / 3.0, rel=1e-3)
        assert fabric.achieved_bandwidth_gbps(1000.0) == pytest.approx(47.0)
        assert fabric.last_activity() == pytest.approx(1000.0)

    def test_utilization_series(self, torus_444):
        fabric = SymmetricFabric(torus_444, NetworkConfig())
        fabric.pipe("local").reserve(376_0.0, 0.0)
        series = fabric.utilization_series(horizon_ns=100.0, window_ns=10.0)
        assert len(series) == 10
        assert series[0][1] > 0
