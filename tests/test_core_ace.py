"""ACE micro-architecture: granularity, SRAM, FSMs, ALUs, engine, area/power."""

import pytest

from repro.collectives.planner import plan_collective
from repro.config.presets import make_system
from repro.config.system import AceConfig, NetworkConfig
from repro.core.alu import AluArray
from repro.core.area_power import AceAreaPowerModel
from repro.core.engine import AceEngine
from repro.core.fsm import FsmPool
from repro.core.granularity import GranularityPolicy
from repro.core.sram import SramScratchpad, partition_sram
from repro.errors import CollectiveError, ResourceError, SchedulingError
from repro.units import KB, MB


class TestGranularity:
    def test_table3_defaults(self):
        policy = GranularityPolicy.from_ace_config(AceConfig())
        assert policy.chunk_bytes == 64 * KB
        assert policy.message_bytes == 8 * KB
        assert policy.packet_bytes == 256

    def test_chunks_for_payload(self):
        policy = GranularityPolicy(64 * KB, 8 * KB, 256)
        sizes = policy.chunks_for_payload(200 * KB)
        assert len(sizes) == 4
        assert sum(sizes) == 200 * KB
        assert policy.num_chunks(64 * KB) == 1

    def test_messages_per_chunk_is_multiple_of_nodes(self):
        policy = GranularityPolicy(64 * KB, 8 * KB, 256)
        for nodes in (3, 4, 7, 16):
            count = policy.messages_per_chunk(64 * KB, nodes)
            assert count % nodes == 0
            assert 64 * KB / count <= policy.message_bytes

    def test_packets_per_message(self):
        policy = GranularityPolicy(64 * KB, 8 * KB, 256)
        assert policy.packets_per_message(8 * KB) == 32
        assert policy.packets_per_message(300) == 2

    def test_invalid_ordering(self):
        with pytest.raises(CollectiveError):
            GranularityPolicy(4 * KB, 8 * KB, 256)


class TestSram:
    def test_partitioning_heuristic_covers_all_phases(self, torus_444):
        plan = plan_collective("all_reduce", torus_444)
        sizes = partition_sram(plan, AceConfig(), NetworkConfig())
        assert set(sizes) == {"phase0", "phase1", "phase2", "phase3", "terminal"}
        assert sum(sizes.values()) == AceConfig().sram_bytes
        # The local phases see 8x the bandwidth of the inter-package phases,
        # so their partitions are larger.
        assert sizes["phase0"] > sizes["phase1"]

    def test_terminal_partition_mirrors_last_phase_weight(self, torus_444):
        plan = plan_collective("all_reduce", torus_444)
        sizes = partition_sram(plan, AceConfig(), NetworkConfig())
        assert sizes["terminal"] > 0

    def test_scratchpad_capacity_tracking(self, torus_444):
        plan = plan_collective("all_reduce", torus_444)
        sram = SramScratchpad.for_plan(plan, AceConfig(), NetworkConfig())
        part = sram.phase_partition(0)
        part.allocate(64 * KB)
        assert sram.used_bytes == 64 * KB
        part.release(64 * KB)
        assert sram.free_bytes == sram.capacity_bytes

    def test_overflow_and_underflow_rejected(self, torus_444):
        plan = plan_collective("all_reduce", torus_444)
        sram = SramScratchpad.for_plan(plan, AceConfig(), NetworkConfig())
        part = sram.terminal_partition()
        with pytest.raises(ResourceError):
            part.allocate(part.capacity_bytes + 1)
        with pytest.raises(ResourceError):
            part.release(1)

    def test_can_admit_chunk(self, torus_444):
        plan = plan_collective("all_reduce", torus_444)
        sram = SramScratchpad.for_plan(plan, AceConfig(), NetworkConfig())
        assert sram.can_admit_chunk(64 * KB, 0)
        assert not sram.can_admit_chunk(8 * MB, 0)


class TestFsmPool:
    def test_program_dedicated_assignment(self):
        pool = FsmPool(16)
        assignment = pool.program(["phase0", "phase1", "phase2", "phase3", "all_to_all"])
        assert sum(len(v) for v in assignment.values()) == 16
        for fsms in assignment.values():
            assert fsms  # every phase has at least one FSM

    def test_program_shared_when_fewer_fsms_than_phases(self):
        pool = FsmPool(2)
        assignment = pool.program(["phase0", "phase1", "phase2", "phase3"])
        for fsms in assignment.values():
            assert fsms == [0, 1]

    def test_acquire_serializes_on_busy_fsms(self):
        pool = FsmPool(1)
        pool.program(["phase0"])
        _, s1, f1 = pool.acquire("phase0", 0.0, 10.0)
        _, s2, _ = pool.acquire("phase0", 0.0, 10.0)
        assert s2 == pytest.approx(f1)

    def test_acquire_unprogrammed_phase_rejected(self):
        pool = FsmPool(4)
        pool.program(["phase0"])
        with pytest.raises(SchedulingError):
            pool.acquire("phase9", 0.0, 1.0)

    def test_utilization(self):
        pool = FsmPool(2)
        pool.program(["phase0"])
        pool.acquire("phase0", 0.0, 10.0)
        assert pool.utilization(10.0) == pytest.approx(0.5)


class TestAluArray:
    def test_throughput_exceeds_network_injection(self):
        alus = AluArray(AceConfig())
        # ALU streaming rate comfortably exceeds the 470 GB/s injection cap
        # divided by the reduce share, so reductions are not the bottleneck.
        assert alus.throughput_gbps > 300.0

    def test_reduce_accounts_bytes(self):
        alus = AluArray(AceConfig())
        alus.reduce(1000.0, 0.0)
        assert alus.reduced_bytes == 1000.0
        with pytest.raises(ResourceError):
            alus.reduce(-1.0, 0.0)


class TestAceEngine:
    def _engine(self, torus):
        engine = AceEngine(make_system("ace"))
        engine.configure(plan_collective("all_reduce", torus))
        return engine

    def test_requires_configuration(self):
        engine = AceEngine(make_system("ace"))
        with pytest.raises(SchedulingError):
            engine.ingress(64 * KB, 0.0)

    def test_ingress_limited_by_dma_memory_slice(self, torus_444):
        engine = self._engine(torus_444)
        finish = engine.ingress(128 * KB, 0.0)
        # 128 KB at the 128 GB/s ACE DMA slice is ~1 us.
        assert finish == pytest.approx(1024.0, rel=0.1)
        assert engine.memory_read_bytes == 128 * KB

    def test_process_phase_occupies_fsm(self, torus_444):
        engine = self._engine(torus_444)
        f1 = engine.process_phase("phase0", 48 * KB, 48 * KB, 0.0, 3, 0.0)
        assert f1 > 0.0
        assert engine.alus.reduced_bytes == 48 * KB

    def test_egress_writes_memory(self, torus_444):
        engine = self._engine(torus_444)
        engine.egress(64 * KB, 0.0)
        assert engine.memory_write_bytes == 64 * KB

    def test_chunk_capacity_matches_sram(self, torus_444):
        engine = self._engine(torus_444)
        assert engine.chunk_capacity() == 64

    def test_stats_and_reset(self, torus_444):
        engine = self._engine(torus_444)
        engine.ingress(64 * KB, 0.0)
        stats = engine.stats()
        assert stats["memory_read_bytes"] == 64 * KB
        engine.reset()
        assert engine.memory_read_bytes == 0.0


class TestAreaPower:
    def test_table4_totals_reproduced(self):
        model = AceAreaPowerModel(AceConfig())
        total = model.total()
        assert total.area_um2 == pytest.approx(5_290_695.0, rel=0.02)
        assert total.power_mw == pytest.approx(4_231.9, rel=0.02)

    def test_component_breakdown(self):
        model = AceAreaPowerModel(AceConfig())
        rows = model.as_table()
        names = [r["component"] for r in rows]
        assert "SRAM banks" in names and "Control unit" in names
        sram_row = next(r for r in rows if r["component"] == "SRAM banks")
        assert sram_row["area_um2"] == pytest.approx(5_113_696.0)

    def test_overhead_below_two_percent(self):
        model = AceAreaPowerModel(AceConfig())
        assert model.area_overhead_fraction() < 0.02
        assert model.power_overhead_fraction() < 0.02

    def test_scaling_with_sram_size(self):
        small = AceAreaPowerModel(AceConfig(sram_bytes=1 * MB)).total()
        big = AceAreaPowerModel(AceConfig(sram_bytes=8 * MB)).total()
        assert big.area_um2 > small.area_um2
        assert big.power_mw > small.power_mw
