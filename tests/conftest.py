"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config.presets import make_system
from repro.network.topology import Torus3D
from repro.workloads.registry import build_workload


@pytest.fixture(scope="session")
def torus_222() -> Torus3D:
    return Torus3D(2, 2, 2)


@pytest.fixture(scope="session")
def torus_444() -> Torus3D:
    return Torus3D(4, 4, 4)


@pytest.fixture(scope="session")
def torus_422() -> Torus3D:
    return Torus3D(4, 2, 2)


@pytest.fixture(scope="session")
def ace_system_cfg():
    return make_system("ace")


@pytest.fixture(scope="session")
def ideal_system_cfg():
    return make_system("ideal")


@pytest.fixture(scope="session")
def comm_opt_system_cfg():
    return make_system("baseline_comm_opt")


@pytest.fixture(scope="session")
def comp_opt_system_cfg():
    return make_system("baseline_comp_opt")


@pytest.fixture(scope="session")
def resnet50_workload():
    return build_workload("resnet50")


@pytest.fixture(scope="session")
def dlrm_workload():
    return build_workload("dlrm")


@pytest.fixture(scope="session")
def gnmt_workload():
    return build_workload("gnmt")
