"""Bandwidth analyses, speedup tables and report formatting."""

import pytest

from repro.analysis.bandwidth import (
    analytical_memory_traffic,
    measure_network_drive,
    memory_bw_sweep,
    sm_sweep,
)
from repro.analysis.report import format_series, format_table
from repro.analysis.speedup import compute_speedups
from repro.config.presets import make_system
from repro.errors import SimulationError
from repro.network.topology import Torus3D
from repro.training.results import TrainingResult
from repro.units import KB, MB


class TestAnalyticalMemoryTraffic:
    def test_4x4x4_matches_paper(self, torus_444):
        req = analytical_memory_traffic(torus_444)
        assert req.injected_bytes_per_payload_byte == pytest.approx(2.25)
        assert req.baseline_reads_per_injected_byte == pytest.approx(1.5)
        assert req.ace_reads_per_injected_byte == pytest.approx(1 / 2.25)
        # Baseline needs ~3.4x more read bandwidth for the same network drive.
        assert req.memory_bw_reduction == pytest.approx(3.375, rel=1e-3)

    def test_required_bandwidth_projection(self, torus_444):
        req = analytical_memory_traffic(torus_444)
        assert req.required_read_bandwidth_gbps(300.0, "baseline") == pytest.approx(450.0)
        assert req.required_read_bandwidth_gbps(300.0, "ace") == pytest.approx(133.3, rel=1e-2)

    @pytest.mark.parametrize("shape", [(4, 2, 2), (4, 4, 2), (4, 8, 4)])
    def test_reduction_exceeds_3x_for_paper_sizes(self, shape):
        req = analytical_memory_traffic(Torus3D(*shape))
        assert req.memory_bw_reduction >= 3.0


class TestNetworkDrive:
    def test_measured_baseline_ratio_matches_analysis(self, torus_422):
        result = measure_network_drive(
            make_system("baseline_comm_opt"), torus_422, 8 * MB, chunk_bytes=256 * KB
        )
        ratio = result.memory_read_bytes / result.bytes_injected
        assert ratio == pytest.approx(1.5, rel=0.02)
        assert result.achieved_bandwidth_gbps > 0

    def test_ideal_outperforms_comp_opt(self, torus_422):
        ideal = measure_network_drive(make_system("ideal"), torus_422, 8 * MB, chunk_bytes=256 * KB)
        comp = measure_network_drive(
            make_system("baseline_comp_opt"), torus_422, 8 * MB, chunk_bytes=256 * KB
        )
        assert ideal.achieved_bandwidth_gbps > comp.achieved_bandwidth_gbps

    def test_memory_bw_sweep_is_monotonic_for_baseline(self, torus_422):
        rows = memory_bw_sweep(torus_422, [64.0, 450.0], payload_bytes=8 * MB, chunk_bytes=256 * KB)
        assert rows[0]["baseline_net_bw_gbps"] <= rows[1]["baseline_net_bw_gbps"]
        # ACE reaches a higher fraction of ideal than the baseline at low BW.
        assert rows[0]["ace_frac_of_ideal"] > rows[0]["baseline_frac_of_ideal"]

    def test_ace_reaches_90pct_of_ideal_at_128gbps(self, torus_444):
        rows = memory_bw_sweep(torus_444, [128.0], payload_bytes=16 * MB, chunk_bytes=128 * KB)
        assert rows[0]["ace_frac_of_ideal"] > 0.9

    def test_baseline_needs_about_450gbps(self, torus_444):
        rows = memory_bw_sweep(
            torus_444, [128.0, 450.0], payload_bytes=16 * MB, chunk_bytes=128 * KB
        )
        assert rows[0]["baseline_frac_of_ideal"] < 0.5
        assert rows[1]["baseline_frac_of_ideal"] > 0.75

    def test_sm_sweep_shows_diminishing_returns(self, torus_422):
        rows = sm_sweep(torus_422, [1, 6, 16], payload_bytes=8 * MB, chunk_bytes=256 * KB)
        one, six, sixteen = (r["baseline_net_bw_gbps"] for r in rows)
        assert one < six
        # Going from 6 to 16 SMs buys far less than going from 1 to 6:
        # around 6 SMs the memory/network path becomes the bottleneck (Fig. 6).
        assert (sixteen - six) < 0.5 * (six - one)


class TestSpeedups:
    def _result(self, system, time_ns):
        return TrainingResult(system, "wl", 16, 2, time_ns, time_ns * 0.7, time_ns * 0.3, 0.0, time_ns)

    def test_speedup_table(self):
        results = [
            self._result("ACE", 100.0),
            self._result("BaselineCompOpt", 130.0),
            self._result("BaselineCommOpt", 200.0),
            self._result("Ideal", 90.0),
        ]
        tables = compute_speedups(results)
        assert len(tables) == 1
        table = tables[0]
        assert table.speedups["BaselineCompOpt"] == pytest.approx(1.3)
        assert table.speedups["BaselineCommOpt"] == pytest.approx(2.0)
        assert table.best_baseline_speedup() == pytest.approx(1.3)
        assert table.fraction_of_ideal["ACE"] == pytest.approx(0.9)

    def test_missing_ace_rejected(self):
        with pytest.raises(SimulationError):
            compute_speedups([self._result("BaselineCompOpt", 100.0)])


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 3.25}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_series(self):
        text = format_series([(0, 0.5), (1, 0.7)], "t", "util")
        assert "util" in text
