"""Workload models: ResNet-50, GNMT, DLRM, Megatron, microbenchmarks."""

import pytest

from repro.collectives.base import CollectiveOp
from repro.compute.kernels import elementwise_cost
from repro.errors import WorkloadError
from repro.training.parallelism import CollectiveRequest, collectives_for_layer, total_backward_payload
from repro.units import MB
from repro.workloads import microbench
from repro.workloads.base import EmbeddingStage, Layer, Workload
from repro.workloads.registry import available_workloads, build_workload


class TestResNet50(object):
    def test_parameter_count_matches_reference(self, resnet50_workload):
        params = resnet50_workload.total_params_bytes / 2  # FP16 bytes -> params
        assert params == pytest.approx(25.5e6, rel=0.03)

    def test_layer_count(self, resnet50_workload):
        # 53 convolutions (incl. downsample projections) + 1 FC layer.
        assert resnet50_workload.num_layers == 54

    def test_flops_per_iteration(self, resnet50_workload):
        # ~3.8 GMAC (7.7 GFLOP) per sample forward, x3 for training, x32 batch.
        expected = 2 * 3.8e9 * 3 * 32
        assert resnet50_workload.total_flops_per_iteration == pytest.approx(expected, rel=0.15)

    def test_every_layer_communicates(self, resnet50_workload):
        assert resnet50_workload.num_comm_layers == resnet50_workload.num_layers

    def test_batch_size_default(self, resnet50_workload):
        assert resnet50_workload.batch_size_per_npu == 32
        assert resnet50_workload.parallelism == "data"


class TestGnmt:
    def test_parameter_count_in_range(self, gnmt_workload):
        params_m = gnmt_workload.total_params_bytes / 2 / 1e6
        assert 150 <= params_m <= 300

    def test_large_per_layer_collectives(self, gnmt_workload):
        biggest = max(l.params_bytes for l in gnmt_workload.layers)
        assert biggest > 16 * MB

    def test_batch_size_default(self, gnmt_workload):
        assert gnmt_workload.batch_size_per_npu == 128


class TestDlrm:
    def test_hybrid_parallelism_with_embedding_stage(self, dlrm_workload):
        assert dlrm_workload.parallelism == "hybrid"
        assert dlrm_workload.embedding is not None
        assert dlrm_workload.embedding.alltoall_forward_bytes > 1 * MB

    def test_alltoall_marker_is_first_top_layer(self, dlrm_workload):
        marker = dlrm_workload.embedding.alltoall_before_layer
        assert dlrm_workload.layers[marker].name.startswith("top.")
        assert dlrm_workload.layers[marker - 1].name.startswith("bottom.")

    def test_mlp_gradients_in_paper_range(self, dlrm_workload):
        total_mb = dlrm_workload.total_params_bytes / MB
        assert 50 <= total_mb <= 300

    def test_batch_size_default(self, dlrm_workload):
        assert dlrm_workload.batch_size_per_npu == 512


class TestMegatron:
    def test_tensor_parallel_activation_allreduces(self):
        megatron = build_workload("megatron")
        assert megatron.parallelism == "model"
        assert all(l.forward_allreduce_bytes > 0 for l in megatron.layers)
        assert all(l.backward_allreduce_bytes > 0 for l in megatron.layers)


class TestRegistry:
    def test_available_workloads(self):
        names = available_workloads()
        for expected in ("resnet50", "gnmt", "dlrm", "megatron"):
            assert expected in names

    def test_unknown_workload_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("alexnet")

    def test_builder_overrides(self):
        small = build_workload("resnet50", batch_size=8)
        assert small.batch_size_per_npu == 8

    def test_summary(self, resnet50_workload):
        summary = resnet50_workload.summary()
        assert summary["name"] == "resnet50"
        assert summary["params_mb"] > 0


class TestWorkloadValidation:
    def _layer(self, **kwargs):
        cost = elementwise_cost(10)
        return Layer(name="l", forward=cost, input_grad=cost, weight_grad=cost, **kwargs)

    def test_empty_workload_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(name="w", layers=(), batch_size_per_npu=1)

    def test_bad_parallelism_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(name="w", layers=(self._layer(),), batch_size_per_npu=1, parallelism="tensor3d")

    def test_negative_params_rejected(self):
        with pytest.raises(WorkloadError):
            self._layer(params_bytes=-1)

    def test_embedding_marker_out_of_range_rejected(self):
        cost = elementwise_cost(10)
        embedding = EmbeddingStage(cost, cost, 100, 100, alltoall_before_layer=5)
        with pytest.raises(WorkloadError):
            Workload(
                name="w",
                layers=(self._layer(),),
                batch_size_per_npu=1,
                parallelism="hybrid",
                embedding=embedding,
            )

    def test_compute_time_scale_positive(self):
        with pytest.raises(WorkloadError):
            Workload(
                name="w",
                layers=(self._layer(),),
                batch_size_per_npu=1,
                compute_time_scale=0.0,
            )


class TestParallelism:
    def test_data_parallel_layer_requests_allreduce(self):
        cost = elementwise_cost(10)
        layer = Layer("l", cost, cost, cost, params_bytes=1000)
        requests = collectives_for_layer(layer, "data")
        assert len(requests) == 1
        assert requests[0].op is CollectiveOp.ALL_REDUCE
        assert requests[0].when == "backward"

    def test_tensor_parallel_layer_requests_blocking_allreduces(self):
        cost = elementwise_cost(10)
        layer = Layer(
            "l", cost, cost, cost, params_bytes=0,
            forward_allreduce_bytes=500, backward_allreduce_bytes=500,
        )
        requests = collectives_for_layer(layer, "model")
        whens = {r.when for r in requests}
        assert whens == {"forward_blocking", "backward_blocking"}

    def test_total_backward_payload(self, resnet50_workload):
        assert total_backward_payload(resnet50_workload) == resnet50_workload.total_params_bytes

    def test_invalid_request(self):
        with pytest.raises(WorkloadError):
            CollectiveRequest(CollectiveOp.ALL_REDUCE, 0, "backward", "l")
        with pytest.raises(WorkloadError):
            CollectiveRequest(CollectiveOp.ALL_REDUCE, 10, "sometime", "l")


class TestMicrobench:
    def test_fig4a_case_grid(self):
        cases = microbench.fig4a_cases()
        # 2 all-reduce sizes x (3 GEMMs + 2 lookups) = 10 cases.
        assert len(cases) == 10
        kinds = {c.compute_kind for c in cases}
        assert kinds == {"gemm", "emb_lookup"}

    def test_dlrm_replay_sizes(self):
        cases = microbench.dlrm_replay_cases()
        sizes = {c.allreduce_bytes for c in cases}
        assert sizes == {16 * MB, 92 * MB, 153 * MB}

    def test_emb_lookup_uses_paper_geometry(self):
        cost = microbench.emb_lookup_kernel(10_000)
        # 10000 samples x 28 lookups x 64 dims x 4 B ~= 71.7 MB of gathers.
        assert cost.bytes_read == pytest.approx(10_000 * 28 * 64 * 4)
