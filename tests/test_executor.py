"""Collective executor: chunking, scheduling, completion."""

import pytest

from repro.collectives.base import CollectiveOp
from repro.config.presets import make_system
from repro.errors import SchedulingError
from repro.network.topology import Torus3D
from repro.sim.engine import Simulator
from repro.training.comm import CollectiveExecutor
from repro.units import KB, MB


def _executor(system_name="ideal", shape=(4, 2, 2), chunk_bytes=64 * KB, **overrides):
    system = make_system(system_name, **overrides)
    sim = Simulator()
    executor = CollectiveExecutor(sim, system, Torus3D(*shape), chunk_bytes=chunk_bytes)
    return sim, executor


class TestIssueAndCompletion:
    def test_single_collective_completes(self):
        sim, executor = _executor()
        handle = executor.issue("all_reduce", 1 * MB)
        assert handle.num_chunks == 16
        sim.run()
        assert handle.finished
        assert handle.completed_at > handle.issued_at
        assert handle.done.fired

    def test_payload_smaller_than_chunk(self):
        sim, executor = _executor()
        handle = executor.issue("all_reduce", 10 * KB)
        assert handle.num_chunks == 1
        sim.run()
        assert handle.finished

    def test_invalid_payload_rejected(self):
        _, executor = _executor()
        with pytest.raises(SchedulingError):
            executor.issue("all_reduce", 0)

    def test_all_to_all_completes(self):
        sim, executor = _executor()
        handle = executor.issue(CollectiveOp.ALL_TO_ALL, 1 * MB)
        sim.run()
        assert handle.finished

    def test_injected_bytes_match_plan(self):
        sim, executor = _executor()
        payload = 2 * MB
        handle = executor.issue("all_reduce", payload)
        sim.run()
        expected = handle.plan.total_injected_bytes(payload)
        assert executor.fabric.bytes_injected == pytest.approx(expected, rel=1e-6)

    def test_multiple_collectives_all_finish(self):
        sim, executor = _executor()
        handles = [executor.issue("all_reduce", 256 * KB, name=f"c{i}") for i in range(5)]
        sim.run()
        assert all(h.finished for h in handles)
        assert executor.outstanding == 0
        assert executor.stats()["collectives_issued"] == 5

    def test_single_node_topology_completes_immediately(self):
        system = make_system("ideal")
        sim = Simulator()
        executor = CollectiveExecutor(sim, system, Torus3D(2, 1, 1), chunk_bytes=64 * KB)
        # Shrink to a 1-node "fabric" is impossible (needs >= 2), so use the
        # degenerate plan path via a topology with a single active dimension.
        handle = executor.issue("all_reduce", 64 * KB)
        sim.run()
        assert handle.finished


class TestScheduling:
    def test_lifo_prioritizes_latest_collective(self):
        sim, executor = _executor("ace", chunk_bytes=64 * KB)
        # Issue a large collective, then a tiny one: under LIFO the tiny one
        # (issued last) should not have to wait for the whole large one.
        big = executor.issue("all_reduce", 8 * MB, name="big")
        small = executor.issue("all_reduce", 64 * KB, name="small")
        sim.run()
        assert small.completed_at < big.completed_at

    def test_fifo_finishes_in_issue_order(self):
        sim, executor = _executor("ideal")
        executor.scheduling = "fifo"
        first = executor.issue("all_reduce", 4 * MB, name="first")
        second = executor.issue("all_reduce", 4 * MB, name="second")
        sim.run()
        assert first.completed_at <= second.completed_at

    def test_launch_overhead_delays_baseline_collectives(self):
        sim_a, ex_a = _executor("ideal")
        h_a = ex_a.issue("all_reduce", 64 * KB)
        sim_a.run()
        sim_b, ex_b = _executor("baseline_comm_opt")
        h_b = ex_b.issue("all_reduce", 64 * KB)
        sim_b.run()
        assert h_b.duration_ns > h_a.duration_ns

    def test_inflight_chunks_bounded_by_endpoint_capacity(self):
        sim, executor = _executor("ace")
        executor.issue("all_reduce", 32 * MB)
        capacity = executor.endpoint.chunk_capacity()
        max_seen = 0
        while sim.step():
            max_seen = max(max_seen, executor.inflight_chunks)
        assert max_seen <= capacity


class TestEndpointInteraction:
    def test_baseline_memory_reads_track_section6a_ratio(self):
        sim, executor = _executor("baseline_comm_opt", shape=(4, 4, 4))
        payload = 4 * MB
        handle = executor.issue("all_reduce", payload)
        sim.run()
        injected = handle.plan.total_injected_bytes(payload)
        ratio = executor.endpoint.memory_read_bytes / injected
        assert ratio == pytest.approx(1.5, rel=0.02)

    def test_ace_memory_traffic_is_payload_in_plus_out(self):
        sim, executor = _executor("ace", shape=(4, 4, 4))
        payload = 4 * MB
        executor.issue("all_reduce", payload)
        sim.run()
        assert executor.endpoint.memory_read_bytes == pytest.approx(payload, rel=1e-6)
        assert executor.endpoint.memory_write_bytes == pytest.approx(payload, rel=1e-6)

    def test_ideal_faster_than_baseline(self):
        times = {}
        for name in ("ideal", "baseline_comp_opt"):
            sim, executor = _executor(name, shape=(4, 4, 4))
            handle = executor.issue("all_reduce", 8 * MB)
            sim.run()
            times[name] = handle.duration_ns
        assert times["ideal"] < times["baseline_comp_opt"]

    def test_all_done_signal(self):
        sim, executor = _executor()
        executor.issue("all_reduce", 256 * KB)
        executor.issue("all_reduce", 256 * KB)
        done = executor.all_done_signal()
        sim.run()
        assert done.fired
