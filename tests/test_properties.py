"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import dataops
from repro.collectives.hierarchical import hierarchical_all_reduce_plan
from repro.collectives.ring import ring_all_reduce, ring_reduce_scatter
from repro.config.presets import SYSTEM_CONFIG_NAMES
from repro.network.messages import split_payload
from repro.network.routing import hop_count, ring_distance, xyz_route
from repro.network.topology import Torus3D
from repro.runner import SimJob
from repro.sim.engine import Simulator
from repro.sim.resources import BandwidthResource
from repro.sim.trace import IntervalTracer

# Keep hypothesis example counts modest so the suite stays fast.
DEFAULT_SETTINGS = settings(max_examples=40, deadline=None)


@DEFAULT_SETTINGS
@given(
    num_nodes=st.integers(min_value=2, max_value=8),
    shard_elems=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_ring_all_reduce_always_sums(num_nodes, shard_elems, seed):
    rng = np.random.default_rng(seed)
    data = [rng.normal(size=num_nodes * shard_elems) for _ in range(num_nodes)]
    out = ring_all_reduce(data)
    expected = np.sum(np.stack(data), axis=0)
    for node_result in out:
        np.testing.assert_allclose(node_result, expected, rtol=1e-9, atol=1e-9)


@DEFAULT_SETTINGS
@given(
    num_nodes=st.integers(min_value=2, max_value=8),
    shard_elems=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_ring_reduce_scatter_preserves_total_sum(num_nodes, shard_elems, seed):
    rng = np.random.default_rng(seed)
    data = [rng.normal(size=num_nodes * shard_elems) for _ in range(num_nodes)]
    shards = ring_reduce_scatter(data)
    total_from_shards = sum(float(np.sum(s)) for s in shards)
    expected_total = float(np.sum(np.stack(data)))
    assert total_from_shards == pytest.approx(expected_total, rel=1e-9, abs=1e-9)


@DEFAULT_SETTINGS
@given(
    num_nodes=st.integers(min_value=1, max_value=16),
    shard_elems=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_all_to_all_is_a_permutation_of_the_data(num_nodes, shard_elems, seed):
    rng = np.random.default_rng(seed)
    data = [rng.normal(size=num_nodes * shard_elems) for _ in range(num_nodes)]
    out = dataops.all_to_all(data)
    before = np.sort(np.concatenate(data))
    after = np.sort(np.concatenate(out))
    np.testing.assert_allclose(before, after)


@DEFAULT_SETTINGS
@given(
    payload=st.integers(min_value=1, max_value=10_000_000),
    chunk=st.integers(min_value=1, max_value=1_000_000),
)
def test_split_payload_conserves_bytes(payload, chunk):
    sizes = split_payload(payload, chunk)
    assert sum(sizes) == payload
    assert all(0 < s <= chunk for s in sizes)
    assert len([s for s in sizes if s < chunk]) <= 1


@DEFAULT_SETTINGS
@given(
    size=st.integers(min_value=1, max_value=64),
    src=st.integers(min_value=0, max_value=63),
    dst=st.integers(min_value=0, max_value=63),
)
def test_ring_distance_bounds_and_symmetry(size, src, dst):
    src %= size
    dst %= size
    hops, direction = ring_distance(size, src, dst)
    assert 0 <= hops <= size // 2
    assert direction in (+1, -1)
    back_hops, _ = ring_distance(size, dst, src)
    assert back_hops == hops


@DEFAULT_SETTINGS
@given(
    shape=st.tuples(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    ).filter(lambda s: s[0] * s[1] * s[2] >= 2),
    data=st.data(),
)
def test_xyz_route_delivers_and_is_bounded(shape, data):
    torus = Torus3D(*shape)
    src = data.draw(st.integers(min_value=0, max_value=torus.num_nodes - 1))
    dst = data.draw(st.integers(min_value=0, max_value=torus.num_nodes - 1))
    route = xyz_route(torus, src, dst)
    if src == dst:
        assert route == []
    else:
        assert route[0][0] == src
        assert route[-1][1] == dst
    max_hops = sum(s // 2 for s in shape)
    assert hop_count(torus, src, dst) <= max_hops


@DEFAULT_SETTINGS
@given(
    shape=st.tuples(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    ).filter(lambda s: s[0] * s[1] * s[2] >= 2),
)
def test_hierarchical_allreduce_plan_invariants(shape):
    torus = Torus3D(*shape)
    plan = hierarchical_all_reduce_plan(torus)
    # The resident fraction returns to 1 and injected bytes are bounded by
    # two full traversals of the two all-reduce dimensions (2 + 2 = 4).
    assert plan.phases[-1].resident_fraction_out == pytest.approx(1.0)
    assert 0.0 < plan.total_injected_fraction <= 4.0
    # Reductions never exceed half the injected traffic... plus local RS.
    assert plan.total_reduced_fraction <= plan.total_injected_fraction


@DEFAULT_SETTINGS
@given(
    requests=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e6),   # earliest start
            st.floats(min_value=1.0, max_value=1e6),   # bytes
        ),
        min_size=1,
        max_size=30,
    ),
    bandwidth=st.floats(min_value=0.5, max_value=500.0),
)
def test_bandwidth_resource_never_overlaps_transfers(requests, bandwidth):
    pipe = BandwidthResource("p", bandwidth)
    reservations = []
    for earliest, num_bytes in requests:
        reservations.append(pipe.reserve(num_bytes, earliest))
    # Serialization intervals must be non-overlapping and ordered (FIFO).
    for first, second in zip(reservations, reservations[1:]):
        first_serialization_end = first.start + first.num_bytes / bandwidth
        assert second.start >= first_serialization_end - 1e-6
    total_busy = sum(r.num_bytes for r in reservations) / bandwidth
    assert pipe.busy_time == pytest.approx(total_busy, rel=1e-6)


@DEFAULT_SETTINGS
@given(
    intervals=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e4),
            st.floats(min_value=0.0, max_value=1e3),
        ),
        max_size=30,
    )
)
def test_interval_tracer_busy_time_is_bounded_by_span(intervals):
    tracer = IntervalTracer()
    for start, length in intervals:
        tracer.record(start, start + length)
    busy = tracer.busy_time()
    assert busy <= tracer.total_span() + 1e-6
    assert busy >= 0.0


# ---------------------------------------------------------------------------
# SimJob spec hashing and serialization
# ---------------------------------------------------------------------------

_POLICY_FIELDS = (
    "comm_sms",
    "comm_memory_bandwidth_gbps",
    "comm_uses_npu_sms",
    "comm_uses_memory",
)
_ACE_FIELDS = ("sram_bytes", "num_fsms", "num_alus", "chunk_bytes")


@DEFAULT_SETTINGS
@given(
    policy=st.dictionaries(st.sampled_from(_POLICY_FIELDS), st.integers(0, 6)),
    ace=st.dictionaries(st.sampled_from(_ACE_FIELDS), st.integers(1, 64)),
    data=st.data(),
)
def test_simjob_hash_is_stable_under_dict_ordering(policy, ace, data):
    sections = [("policy", list(policy.items())), ("ace", list(ace.items()))]
    shuffled = [
        (name, dict(data.draw(st.permutations(items)) if items else items))
        for name, items in data.draw(st.permutations(sections))
    ]
    job = SimJob(
        workload="resnet50",
        num_npus=16,
        overrides={"policy": policy, "ace": ace},
    )
    reordered = SimJob(workload="resnet50", num_npus=16, overrides=dict(shuffled))
    assert reordered == job
    assert hash(reordered) == hash(job)
    assert reordered.to_json() == job.to_json()
    assert reordered.spec_hash() == job.spec_hash()


@DEFAULT_SETTINGS
@given(
    system=st.sampled_from(SYSTEM_CONFIG_NAMES),
    workload=st.sampled_from(("resnet50", "gnmt", "dlrm", "megatron")),
    num_npus=st.sampled_from((16, 32, 64, 128)),
    iterations=st.integers(1, 4),
    chunk=st.one_of(st.none(), st.integers(1024, 2**20)),
    overlap=st.booleans(),
)
def test_simjob_roundtrips_through_json(system, workload, num_npus, iterations, chunk, overlap):
    job = SimJob(
        system=system,
        workload=workload,
        num_npus=num_npus,
        iterations=iterations,
        chunk_bytes=chunk,
        overlap_embedding=overlap,
    )
    clone = SimJob.from_json(job.to_json())
    assert clone == job
    assert hash(clone) == hash(job)
    assert clone.spec_hash() == job.spec_hash()
    assert clone.to_json() == job.to_json()


@DEFAULT_SETTINGS
@given(
    payload=st.integers(1, 2**26),
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4)).filter(
        lambda s: s[0] * s[1] * s[2] >= 2
    ),
    op=st.sampled_from(("all_reduce", "all_to_all", "reduce_scatter", "all_gather")),
)
def test_network_drive_simjob_roundtrips_and_distinct_specs_differ(payload, shape, op):
    job = SimJob(kind="network_drive", system="ideal", payload_bytes=payload,
                 topology=shape, op=op)
    clone = SimJob.from_dict(job.to_dict())
    assert clone == job
    assert clone.spec_hash() == job.spec_hash()
    bigger = SimJob(kind="network_drive", system="ideal", payload_bytes=payload + 1,
                    topology=shape, op=op)
    assert bigger.spec_hash() != job.spec_hash()


@DEFAULT_SETTINGS
@given(
    system=st.sampled_from(SYSTEM_CONFIG_NAMES),
    workload=st.sampled_from(("resnet50", "gnmt", "dlrm")),
    num_npus=st.sampled_from((8, 16, 32)),
    backend=st.one_of(st.none(), st.sampled_from(("symmetric", "detailed", "auto"))),
)
def test_simjob_backend_round_trips(system, workload, num_npus, backend):
    job = SimJob(system=system, workload=workload, num_npus=num_npus, backend=backend)
    clone = SimJob.from_json(job.to_json())
    assert clone == job
    assert clone.backend == backend
    assert clone.spec_hash() == job.spec_hash()
    assert clone.build_system().network_backend == (backend or "symmetric")


@DEFAULT_SETTINGS
@given(
    system=st.sampled_from(SYSTEM_CONFIG_NAMES),
    workload=st.sampled_from(("resnet50", "gnmt", "dlrm", "megatron")),
    num_npus=st.sampled_from((16, 32, 64, 128)),
    iterations=st.integers(1, 4),
    backend=st.sampled_from(("symmetric", "detailed", "auto")),
)
def test_simjob_old_version_spec_hash_is_stable(system, workload, num_npus, iterations, backend):
    """Specs that do not use the 1.2.0 ``backend`` knob keep their pre-1.2.0
    canonical JSON — and therefore their cache key under any fixed version
    salt — while tagged specs always diverge from the untagged hash."""
    import hashlib
    import json as json_module

    plain = SimJob(system=system, workload=workload, num_npus=num_npus, iterations=iterations)
    assert "backend" not in plain.to_dict()
    # The exact canonical JSON schema the 1.1.0 release hashed.
    legacy_payload = json_module.dumps(
        {
            "kind": "training",
            "system": system,
            "overrides": {},
            "num_npus": num_npus,
            "topology": None,
            "fabric": None,
            "algorithm": "auto",
            "chunk_bytes": None,
            "workload": workload,
            "iterations": iterations,
            "overlap_embedding": False,
            "payload_bytes": None,
            "op": "all_reduce",
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    legacy_hash = hashlib.sha256(f"1.1.0:{legacy_payload}".encode("utf-8")).hexdigest()
    assert plain.spec_hash(version="1.1.0") == legacy_hash
    tagged = SimJob(
        system=system, workload=workload, num_npus=num_npus,
        iterations=iterations, backend=backend,
    )
    assert tagged.spec_hash(version="1.1.0") != legacy_hash


@DEFAULT_SETTINGS
@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_simulator_clock_is_monotonic(delays):
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
