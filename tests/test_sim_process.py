"""Signals and co-operative processes."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import Process, Signal, all_of


def test_signal_fires_once_with_value():
    sim = Simulator()
    sig = Signal("s")
    assert not sig.fired
    sig.fire(sim, value=42)
    assert sig.fired
    assert sig.value == 42
    with pytest.raises(SimulationError):
        sig.fire(sim)


def test_signal_late_subscriber_still_called():
    sim = Simulator()
    sig = Signal()
    sig.fire(sim)
    called = []
    sig.on_fire(sim, lambda s: called.append(True))
    sim.run()
    assert called == [True]


def test_signal_fire_at():
    sim = Simulator()
    sig = Signal()
    sig.fire_at(sim, 25.0)
    sim.run()
    assert sig.fired_at == pytest.approx(25.0)


def test_all_of_waits_for_every_signal():
    sim = Simulator()
    a, b = Signal("a"), Signal("b")
    combined = all_of(sim, [a, b])
    a.fire_at(sim, 10.0)
    b.fire_at(sim, 30.0)
    sim.run()
    assert combined.fired
    assert combined.fired_at == pytest.approx(30.0)


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    combined = all_of(sim, [])
    assert combined.fired


def test_process_delays_advance_clock():
    sim = Simulator()

    def program():
        yield 10.0
        yield 5.0
        return "done"

    proc = Process(sim, program(), name="p")
    sim.run()
    assert proc.done.fired
    assert proc.done.value == "done"
    assert sim.now == pytest.approx(15.0)


def test_process_waits_on_signal():
    sim = Simulator()
    gate = Signal("gate")
    log = []

    def program():
        log.append(("start", sim.now))
        yield gate
        log.append(("resumed", sim.now))

    Process(sim, program())
    gate.fire_at(sim, 100.0)
    sim.run()
    assert log[-1] == ("resumed", 100.0)


def test_process_rejects_negative_delay():
    sim = Simulator()

    def program():
        yield -5.0

    Process(sim, program())
    with pytest.raises(SimulationError):
        sim.run()


def test_process_rejects_bad_yield_value():
    sim = Simulator()

    def program():
        yield "nonsense"

    Process(sim, program())
    with pytest.raises(SimulationError):
        sim.run()
