"""Bandwidth and slot resources."""

import pytest

from repro.errors import ResourceError
from repro.sim.engine import Simulator
from repro.sim.resources import BandwidthResource, SlotResource
from repro.sim.trace import IntervalTracer


class TestBandwidthResource:
    def test_serialization_time(self):
        pipe = BandwidthResource("p", bandwidth_gbps=100.0)
        r = pipe.reserve(1000.0, earliest_start=0.0)
        assert r.start == 0.0
        assert r.finish == pytest.approx(10.0)

    def test_latency_added_to_finish_not_occupancy(self):
        pipe = BandwidthResource("p", bandwidth_gbps=100.0, latency_ns=5.0)
        first = pipe.reserve(1000.0, 0.0)
        second = pipe.reserve(1000.0, 0.0)
        assert first.finish == pytest.approx(15.0)
        # The second transfer starts when the first finishes serializing (10),
        # not when its latency elapses (15).
        assert second.start == pytest.approx(10.0)
        assert second.finish == pytest.approx(25.0)

    def test_fifo_queuing(self):
        pipe = BandwidthResource("p", bandwidth_gbps=1.0)
        a = pipe.reserve(100.0, 0.0)
        b = pipe.reserve(50.0, 0.0)
        assert a.finish == pytest.approx(100.0)
        assert b.start == pytest.approx(100.0)
        assert b.finish == pytest.approx(150.0)

    def test_idle_gap_respected(self):
        pipe = BandwidthResource("p", bandwidth_gbps=1.0)
        pipe.reserve(10.0, 0.0)
        late = pipe.reserve(10.0, 100.0)
        assert late.start == pytest.approx(100.0)

    def test_statistics(self):
        pipe = BandwidthResource("p", bandwidth_gbps=2.0)
        pipe.reserve(100.0, 0.0)
        pipe.reserve(100.0, 0.0)
        assert pipe.bytes_moved == pytest.approx(200.0)
        assert pipe.busy_time == pytest.approx(100.0)
        assert pipe.requests == 2
        assert pipe.utilization(200.0) == pytest.approx(0.5)
        assert pipe.achieved_bandwidth_gbps(100.0) == pytest.approx(2.0)

    def test_tracer_records_busy_intervals(self):
        tracer = IntervalTracer("t")
        pipe = BandwidthResource("p", bandwidth_gbps=1.0, trace=tracer)
        pipe.reserve(10.0, 0.0)
        pipe.reserve(10.0, 50.0)
        assert tracer.busy_time(0.0, 100.0) == pytest.approx(20.0)

    def test_invalid_parameters(self):
        with pytest.raises(ResourceError):
            BandwidthResource("p", bandwidth_gbps=0.0)
        with pytest.raises(ResourceError):
            BandwidthResource("p", bandwidth_gbps=1.0, latency_ns=-1.0)
        pipe = BandwidthResource("p", bandwidth_gbps=1.0)
        with pytest.raises(ResourceError):
            pipe.reserve(-1.0, 0.0)

    def test_event_mode_transfer(self):
        sim = Simulator()
        pipe = BandwidthResource("p", bandwidth_gbps=1.0)
        finished = []
        pipe.transfer(sim, 42.0, lambda r: finished.append(r.finish))
        sim.run()
        assert finished == [pytest.approx(42.0)]

    def test_reset(self):
        pipe = BandwidthResource("p", bandwidth_gbps=1.0)
        pipe.reserve(10.0, 0.0)
        pipe.reset()
        assert pipe.busy_time == 0.0
        assert pipe.bytes_moved == 0.0
        assert pipe.next_free == 0.0

    def test_queuing_delay_reported(self):
        pipe = BandwidthResource("p", bandwidth_gbps=1.0)
        pipe.reserve(100.0, 0.0)
        queued = pipe.reserve(10.0, 0.0)
        assert queued.queuing_delay == pytest.approx(100.0)


class TestSlotResource:
    def test_parallel_slots(self):
        slots = SlotResource("s", 2)
        _, s1, f1 = slots.acquire(0.0, 10.0)
        _, s2, f2 = slots.acquire(0.0, 10.0)
        _, s3, f3 = slots.acquire(0.0, 10.0)
        assert (s1, s2) == (0.0, 0.0)
        assert s3 == pytest.approx(10.0)
        assert f3 == pytest.approx(20.0)

    def test_earliest_available(self):
        slots = SlotResource("s", 1)
        slots.acquire(0.0, 10.0)
        assert slots.earliest_available(0.0) == pytest.approx(10.0)
        assert slots.earliest_available(20.0) == pytest.approx(20.0)

    def test_utilization(self):
        slots = SlotResource("s", 2)
        slots.acquire(0.0, 10.0)
        slots.acquire(0.0, 10.0)
        assert slots.utilization(10.0) == pytest.approx(1.0)
        assert slots.utilization(20.0) == pytest.approx(0.5)

    def test_invalid(self):
        with pytest.raises(ResourceError):
            SlotResource("s", 0)
        slots = SlotResource("s", 1)
        with pytest.raises(ResourceError):
            slots.acquire(0.0, -1.0)

    def test_reset(self):
        slots = SlotResource("s", 1)
        slots.acquire(0.0, 10.0)
        slots.reset()
        assert slots.busy_time == 0.0
        assert slots.earliest_available(0.0) == 0.0
