"""Network-backend registry, protocol, and cross-backend equivalence tests."""

from __future__ import annotations

import pytest

from repro.analysis.bandwidth import measure_network_drive
from repro.config.presets import make_system
from repro.config.system import NetworkConfig
from repro.errors import ConfigurationError
from repro.experiments.backend_validation import (
    TOLERANCE,
    backend_validation_jobs,
    max_disagreement,
    run_backend_validation,
)
from repro.network import (
    DEFAULT_AUTO_NPU_THRESHOLD,
    MAX_DETAILED_NPUS,
    MAX_HYBRID_NPUS,
    DetailedBackend,
    HybridBackend,
    NetworkBackend,
    SymmetricFabric,
    backend_names,
    make_network_backend,
    resolve_backend_name,
    topology_from_spec,
)
from repro.runner import ResultCache, SimJob, SweepRunner
from repro.sim.engine import Simulator
from repro.training.comm import CollectiveExecutor
from repro.training.loop import simulate_training
from repro.units import KB, MB


# ---------------------------------------------------------------------------
# Registry and auto heuristic
# ---------------------------------------------------------------------------


class TestBackendRegistry:
    def test_builtin_backends_are_registered(self):
        names = backend_names()
        assert "symmetric" in names
        assert "detailed" in names

    def test_make_backend_builds_the_named_class(self, torus_422):
        network = NetworkConfig()
        assert isinstance(
            make_network_backend("symmetric", torus_422, network), SymmetricFabric
        )
        assert isinstance(
            make_network_backend("detailed", torus_422, network), DetailedBackend
        )

    def test_unknown_backend_name_raises(self, torus_422):
        with pytest.raises(ConfigurationError, match="unknown network backend"):
            make_network_backend("garnet", torus_422, NetworkConfig())

    def test_auto_ladder_detailed_hybrid_symmetric(self):
        small = topology_from_spec("torus:4x2x2")
        at_threshold = topology_from_spec("torus:4x4x4")
        mid = topology_from_spec("torus:8x4x4")
        large = topology_from_spec("torus:8x16x8")
        huge = topology_from_spec("torus:16x16x16")
        assert at_threshold.num_nodes == DEFAULT_AUTO_NPU_THRESHOLD
        assert large.num_nodes <= MAX_HYBRID_NPUS < huge.num_nodes
        assert resolve_backend_name("auto", small) == "detailed"
        assert resolve_backend_name("auto", at_threshold) == "detailed"
        assert resolve_backend_name("auto", mid) == "hybrid"
        assert resolve_backend_name("auto", large) == "hybrid"
        assert resolve_backend_name("auto", huge) == "symmetric"

    def test_auto_threshold_is_configurable(self, torus_422):
        # Above the detailed threshold (but under the hybrid cap) "auto"
        # lands on the hybrid rung.
        assert resolve_backend_name("auto", torus_422, auto_threshold=8) == "hybrid"
        with pytest.raises(ConfigurationError, match="threshold must be positive"):
            resolve_backend_name("auto", torus_422, auto_threshold=0)

    def test_explicit_detailed_above_cap_is_infeasible(self):
        huge = topology_from_spec("torus:8x16x8")
        assert huge.num_nodes > MAX_DETAILED_NPUS
        with pytest.raises(ConfigurationError, match="infeasible"):
            make_network_backend("detailed", huge, NetworkConfig())

    def test_both_backends_satisfy_the_protocol(self, torus_422):
        for name in ("symmetric", "detailed"):
            backend = make_network_backend(name, torus_422, NetworkConfig())
            assert isinstance(backend, NetworkBackend)
            assert backend.name == name
            assert backend.has_dimension("local")
            assert not backend.has_dimension("nonexistent")
            assert set(backend.dimensions) == {"local", "vertical", "horizontal"}
            reservation = backend.reserve("local", 64 * KB, 0.0, steps=3)
            assert reservation.finish > reservation.start >= 0.0
            assert backend.bytes_injected == pytest.approx(64 * KB)
            assert backend.last_activity() > 0.0
            backend.reset()
            assert backend.bytes_injected == 0.0


class TestUncontendedArithmetic:
    def test_single_step_transfer_times_match_exactly(self, torus_422):
        """With no contention and one ring step both models charge
        serialization over the aggregate dimension bandwidth plus one link
        latency — bit-identical finish times."""
        network = NetworkConfig()
        for dimension in ("local", "vertical", "horizontal"):
            symmetric = SymmetricFabric(torus_422, network)
            detailed = DetailedBackend(torus_422, network)
            a = symmetric.reserve(dimension, 256 * KB, 0.0, steps=1)
            b = detailed.reserve(dimension, 256 * KB, 0.0, steps=1)
            assert b.finish == pytest.approx(a.finish, rel=1e-9), dimension

    def test_multi_step_transfer_is_bounded_by_both_models(self, torus_422):
        """Multi-step rings pipeline messages hop by hop, so the detailed
        model hides part of the per-step latency the symmetric model charges
        in full: serialization + one latency <= detailed <= symmetric."""
        network = NetworkConfig()
        for dimension, steps in (("local", 3), ("vertical", 2)):
            symmetric = SymmetricFabric(torus_422, network)
            detailed = DetailedBackend(torus_422, network)
            a = symmetric.reserve(dimension, 256 * KB, 0.0, steps=steps)
            b = detailed.reserve(dimension, 256 * KB, 0.0, steps=steps)
            serialization = 256 * KB / network.dimension_bandwidth_gbps(dimension)
            latency = network.dimension_latency_ns(dimension)
            assert serialization + latency - 1e-6 <= b.finish <= a.finish + 1e-6, dimension

    def test_detailed_port_count_follows_link_provisioning(self, torus_422):
        detailed = DetailedBackend(torus_422, NetworkConfig())
        assert len(detailed.ports("local")) == 2
        assert len(detailed.ports("vertical")) == 2
        assert detailed.injection_bandwidth_gbps == pytest.approx(
            SymmetricFabric(torus_422, NetworkConfig()).injection_bandwidth_gbps
        )

    def test_per_dimension_bytes_and_link_stats_account_everything(self, torus_422):
        detailed = DetailedBackend(torus_422, NetworkConfig())
        detailed.reserve("local", 100.0, 0.0, steps=2)
        detailed.reserve("vertical", 60.0, 0.0)
        per_dim = detailed.per_dimension_bytes()
        assert per_dim["local"] == pytest.approx(100.0)
        assert per_dim["vertical"] == pytest.approx(60.0)
        assert sum(r["bytes_moved"] for r in detailed.per_link_stats()) == pytest.approx(
            detailed.bytes_injected
        )


# ---------------------------------------------------------------------------
# Knob threading: SystemConfig, make_system, SimJob, executor, loop
# ---------------------------------------------------------------------------


class TestBackendKnob:
    def test_default_system_uses_symmetric(self):
        assert make_system("ace").network_backend == "symmetric"

    def test_make_system_backend_argument(self):
        system = make_system("ace", backend="detailed")
        assert system.network_backend == "detailed"
        assert system.describe()["network_backend"] == "detailed"

    def test_bad_backend_fails_at_executor_construction(self, torus_222):
        system = make_system("ace", backend="garnet")
        with pytest.raises(ConfigurationError, match="unknown network backend"):
            CollectiveExecutor(Simulator(), system, torus_222)

    def test_executor_honours_system_backend_and_override(self, torus_222):
        system = make_system("ace", backend="detailed")
        executor = CollectiveExecutor(Simulator(), system, torus_222)
        assert isinstance(executor.fabric, DetailedBackend)
        overridden = CollectiveExecutor(
            Simulator(), system, torus_222, backend="symmetric"
        )
        assert isinstance(overridden.fabric, SymmetricFabric)

    def test_auto_backend_respects_system_threshold(self):
        topology = topology_from_spec("torus:4x2x2")
        system = make_system("ace", backend="auto").with_overrides(
            network_backend_auto_threshold=8
        )
        executor = CollectiveExecutor(Simulator(), system, topology)
        assert isinstance(executor.fabric, HybridBackend)

    def test_simjob_backend_round_trip_and_conflict(self):
        job = SimJob(workload="resnet50", num_npus=16, backend="detailed")
        assert SimJob.from_json(job.to_json()) == job
        assert job.build_system().network_backend == "detailed"
        with pytest.raises(ConfigurationError, match="unknown network backend"):
            SimJob(workload="resnet50", num_npus=16, backend="garnet")
        with pytest.raises(ConfigurationError, match="conflicting network backends"):
            SimJob(
                workload="resnet50",
                num_npus=16,
                backend="detailed",
                overrides={"network_backend": "symmetric"},
            )

    def test_simjob_without_backend_keeps_pre_1_2_spec_json(self):
        job = SimJob(workload="resnet50", num_npus=16)
        assert "backend" not in job.to_dict()
        tagged = SimJob(workload="resnet50", num_npus=16, backend="symmetric")
        assert tagged.to_dict()["backend"] == "symmetric"
        assert tagged.spec_hash() != job.spec_hash()

    def test_simulate_training_backend_argument(self, torus_222, resnet50_workload):
        result = simulate_training(
            make_system("ideal"),
            resnet50_workload,
            num_npus=torus_222,
            iterations=1,
            chunk_bytes=512 * KB,
            backend="detailed",
        )
        assert result.total_time_ns > 0


# ---------------------------------------------------------------------------
# Bugfix: fabric built for a different topology than the loop's
# ---------------------------------------------------------------------------


class TestFabricTopologyMismatch:
    def test_mismatched_fabric_raises_and_names_both_topologies(self, torus_222, torus_444):
        system = make_system("ace")
        fabric = SymmetricFabric(torus_444, system.network)
        with pytest.raises(ConfigurationError) as excinfo:
            CollectiveExecutor(Simulator(), system, torus_222, fabric=fabric)
        message = str(excinfo.value)
        assert torus_444.name in message
        assert torus_222.name in message

    def test_equivalent_topology_instances_are_accepted(self, torus_222):
        from repro.network.topology import Torus3D

        system = make_system("ace")
        fabric = SymmetricFabric(Torus3D(2, 2, 2), system.network)
        executor = CollectiveExecutor(Simulator(), system, torus_222, fabric=fabric)
        assert executor.fabric is fabric

    def test_fabric_and_backend_together_is_rejected(self, torus_222):
        system = make_system("ace")
        fabric = SymmetricFabric(torus_222, system.network)
        with pytest.raises(ConfigurationError, match="not both"):
            CollectiveExecutor(
                Simulator(), system, torus_222, fabric=fabric, backend="detailed"
            )


# ---------------------------------------------------------------------------
# Cross-backend equivalence: all five planner algorithms
# ---------------------------------------------------------------------------

#: Each planner algorithm on a small fabric it supports — the paper's 8- and
#: 16-NPU torus shapes for the torus algorithms (a 2x2x2 torus is
#: deliberately avoided: every ring has size 2 there, which maximises
#: head-of-line interleaving between chunks and is exactly where a per-link
#: FIFO model legitimately drifts past the analytical one).
ALGORITHM_FABRICS = [
    ("hierarchical", "torus:4x2x1", "all_reduce"),
    ("hierarchical", "torus:4x2x2", "all_reduce"),
    ("direct", "torus:4x2x2", "all_to_all"),
    ("ring", "torus:4x2x1", "all_reduce"),
    ("tree", "fc:8", "all_reduce"),
    ("halving_doubling", "switch:8", "all_reduce"),
]


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("algorithm,fabric,op", ALGORITHM_FABRICS)
    def test_detailed_matches_symmetric_within_tolerance(self, algorithm, fabric, op):
        topology = topology_from_spec(fabric)
        durations = {}
        for backend in ("symmetric", "detailed"):
            drive = measure_network_drive(
                make_system("ace", algorithm=algorithm, backend=backend),
                topology,
                payload_bytes=4 * MB,
                op=op,
                chunk_bytes=512 * KB,
            )
            durations[backend] = drive.duration_ns
        assert durations["detailed"] == pytest.approx(
            durations["symmetric"], rel=TOLERANCE
        ), (algorithm, fabric)

    def test_training_iteration_breakdowns_agree(self, resnet50_workload):
        results = {}
        for backend in ("symmetric", "detailed"):
            results[backend] = simulate_training(
                make_system("ace", backend=backend),
                resnet50_workload,
                num_npus=8,
                iterations=2,
                chunk_bytes=128 * KB,
            )
        symmetric, detailed = results["symmetric"], results["detailed"]
        assert detailed.total_time_ns == pytest.approx(
            symmetric.total_time_ns, rel=TOLERANCE
        )
        exposed_delta = abs(symmetric.exposed_comm_ns - detailed.exposed_comm_ns)
        assert exposed_delta <= TOLERANCE * max(
            symmetric.total_time_ns, detailed.total_time_ns
        )
        assert len(detailed.iteration_breakdowns) == len(symmetric.iteration_breakdowns)


# ---------------------------------------------------------------------------
# The validation experiment (the paper's model-validation analogue)
# ---------------------------------------------------------------------------


class TestBackendValidationExperiment:
    def test_jobs_come_in_backend_pairs(self):
        jobs = backend_validation_jobs()
        assert len(jobs) % 2 == 0
        for index in range(0, len(jobs), 2):
            first, second = jobs[index], jobs[index + 1]
            assert first.backend == "symmetric"
            assert second.backend == "detailed"
            assert first.to_dict().keys() == second.to_dict().keys()

    def test_oversized_cells_are_rejected(self):
        with pytest.raises(ConfigurationError, match="<= 32"):
            backend_validation_jobs(training_cells=(("resnet50", 64),))

    @pytest.mark.slow
    def test_symmetric_tracks_detailed_within_tolerance(self):
        """The repo's analogue of the paper's model-validation claim."""
        runner = SweepRunner(workers=2, cache=ResultCache())
        rows = run_backend_validation(runner=runner)
        assert rows, "validation sweep produced no cells"
        assert max_disagreement(rows) <= TOLERANCE, rows

    @pytest.mark.slow
    def test_validation_holds_for_the_overlap_baseline_too(self):
        runner = SweepRunner(workers=2, cache=ResultCache())
        rows = run_backend_validation(
            system="baseline_comm_opt",
            training_cells=(("resnet50", 16), ("dlrm", 16)),
            drive_cells=(("torus:4x2x2", "all_reduce"),),
            runner=runner,
        )
        assert max_disagreement(rows) <= TOLERANCE, rows


# ---------------------------------------------------------------------------
# Contention: what the detailed backend expresses that symmetric cannot
# ---------------------------------------------------------------------------


class TestDetailedContention:
    def test_event_driven_flag_routes_executor_through_transfer(self, torus_222):
        assert DetailedBackend.event_driven is True
        assert SymmetricFabric.event_driven is False

    def test_synchronous_transfer_callbacks_do_not_fork_the_stage_chain(self, torus_222):
        """A backend may deliver on_complete synchronously from transfer();
        the executor must still run each chunk's stage chain exactly once."""

        class SynchronousBackend(SymmetricFabric):
            event_driven = True

            def transfer(self, sim, dimension, num_bytes, steps, on_complete):
                on_complete(self.reserve(dimension, num_bytes, sim.now, steps=steps).finish)

        system = make_system("ideal")
        sim = Simulator()
        fabric = SynchronousBackend(torus_222, system.network)
        executor = CollectiveExecutor(sim, system, torus_222, fabric=fabric, chunk_bytes=256 * KB)
        handle = executor.issue("all_reduce", 1 * MB)
        sim.run()
        assert handle.finished
        assert handle.chunks_completed == handle.num_chunks
        assert executor.inflight_chunks == 0

    def test_concurrent_collectives_contend_per_link(self, torus_222):
        """Two concurrent all-reduces must serialise on the shared ports."""
        system = make_system("ideal", backend="detailed")
        sim = Simulator()
        executor = CollectiveExecutor(sim, system, torus_222, chunk_bytes=256 * KB)
        solo_sim = Simulator()
        solo = CollectiveExecutor(solo_sim, system, torus_222, chunk_bytes=256 * KB)

        solo_handle = solo.issue("all_reduce", 2 * MB)
        solo_sim.run()
        first = executor.issue("all_reduce", 2 * MB)
        second = executor.issue("all_reduce", 2 * MB)
        sim.run()

        assert solo_handle.duration_ns is not None
        assert first.duration_ns is not None and second.duration_ns is not None
        last_done = max(first.completed_at, second.completed_at)
        # Two payloads through the same links cannot finish as fast as one...
        assert last_done > solo_handle.completed_at * 1.5
        # ...but contention must not more than double the makespan (the
        # fabric keeps serving both; it does not livelock or serialise
        # beyond the extra bytes).
        assert last_done < solo_handle.completed_at * 2.5
